// Package tensor provides dense float32 n-dimensional arrays and the small
// set of linear-algebra kernels the training engine needs: element-wise
// arithmetic, blocked matrix multiplication, im2col/col2im for convolution,
// reductions and random initialisation.
//
// Tensors are row-major. The package is deliberately minimal — it is a
// substrate for the federated-learning experiments in this repository, not a
// general array library — but every exported operation validates its shape
// arguments and panics with a descriptive message on misuse, since shape bugs
// in a hand-rolled training engine are otherwise very hard to localise.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float32 array of arbitrary rank.
//
// The zero value is not usable; construct tensors with New, Zeros, FromSlice
// or the random constructors in random.go. Data is exposed so that hot loops
// (layer kernels, optimisers) can operate on the raw slice.
type Tensor struct {
	// Shape holds the extent of each dimension, outermost first.
	Shape []int
	// Data holds the elements in row-major order; len(Data) == Prod(Shape).
	Data []float32
}

// Prod returns the product of dims, treating the empty slice as 1 (the size
// of a scalar).
func Prod(dims []int) int {
	p := 1
	for _, d := range dims {
		p *= d
	}
	return p
}

// New returns a zero-filled tensor with the given shape.
//
// The shape argument is copied immediately and never retained or passed on,
// so escape analysis can keep callers' variadic shape literals on the stack —
// hot loops that probe buffer caches (see nn's ensure helper) rely on this to
// stay allocation-free on the cache-hit path.
func New(shape ...int) *Tensor {
	s := append([]int(nil), shape...)
	for _, d := range s {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", s))
		}
	}
	return &Tensor{Shape: s, Data: make([]float32, Prod(s))}
}

// Zeros is an alias for New, provided for readability at call sites that
// emphasise the initial value rather than allocation.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full returns a tensor with the given shape where every element is v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); the caller must not alias it unexpectedly.
func FromSlice(data []float32, shape ...int) *Tensor {
	s := append([]int(nil), shape...)
	if len(data) != Prod(s) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (size %d)",
			len(data), s, Prod(s)))
	}
	return &Tensor{Shape: s, Data: data}
}

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must have equal sizes.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.Shape, src.Shape))
	}
	copy(t.Data, src.Data)
}

// Reshape returns a view of t with a new shape of the same total size. The
// returned tensor shares Data with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	s := append([]int(nil), shape...)
	if Prod(s) != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (size %d) to %v (size %d)",
			t.Shape, len(t.Data), s, Prod(s)))
	}
	return &Tensor{Shape: s, Data: t.Data}
}

// Zero sets every element of t to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given multi-index. Intended for tests and
// small accesses, not hot loops.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// String renders a short description, e.g. "Tensor[2 3]". Element values are
// deliberately omitted; use Data for debugging.
func (t *Tensor) String() string { return fmt.Sprintf("Tensor%v", t.Shape) }

// IsFinite reports whether every element is neither NaN nor infinite. The
// training engine uses it in tests and assertions to catch divergence early.
func (t *Tensor) IsFinite() bool {
	for _, v := range t.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return false
		}
	}
	return true
}
