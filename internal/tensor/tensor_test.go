package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewAndSize(t *testing.T) {
	cases := []struct {
		shape []int
		size  int
	}{
		{[]int{}, 1},
		{[]int{0}, 0},
		{[]int{3}, 3},
		{[]int{2, 3}, 6},
		{[]int{2, 3, 4}, 24},
		{[]int{1, 1, 1, 1}, 1},
	}
	for _, c := range cases {
		tt := New(c.shape...)
		if tt.Size() != c.size {
			t.Errorf("New(%v).Size() = %d, want %d", c.shape, tt.Size(), c.size)
		}
		if tt.Rank() != len(c.shape) {
			t.Errorf("New(%v).Rank() = %d, want %d", c.shape, tt.Rank(), len(c.shape))
		}
		for _, v := range tt.Data {
			if v != 0 {
				t.Errorf("New(%v) not zero-filled", c.shape)
			}
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with negative dim did not panic")
		}
	}()
	New(2, -1)
}

func TestFull(t *testing.T) {
	tt := Full(2.5, 2, 2)
	for _, v := range tt.Data {
		if v != 2.5 {
			t.Fatalf("Full element = %v, want 2.5", v)
		}
	}
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	tt := FromSlice(d, 2, 3)
	if tt.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", tt.At(1, 2))
	}
	if tt.At(0, 1) != 2 {
		t.Errorf("At(0,1) = %v, want 2", tt.At(0, 1))
	}
	// Views share data.
	tt.Set(99, 0, 0)
	if d[0] != 99 {
		t.Error("FromSlice should not copy the slice")
	}
}

func TestFromSliceBadLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := a.Clone()
	b.Data[0] = 42
	if a.Data[0] != 1 {
		t.Error("Clone shares underlying data")
	}
	if !SameShape(a, b) {
		t.Error("Clone changed shape")
	}
}

func TestReshape(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	if b.At(2, 1) != 6 {
		t.Errorf("reshaped At(2,1) = %v, want 6", b.At(2, 1))
	}
	b.Set(-1, 0, 0)
	if a.At(0, 0) != -1 {
		t.Error("Reshape must be a view sharing data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape to wrong size did not panic")
		}
	}()
	a.Reshape(4, 2)
}

func TestAtOutOfRangePanics(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	a.At(2, 0)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	a.Add(b)
	want := []float32{5, 7, 9}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("Add: got %v, want %v", a.Data, want)
		}
	}
	a.Sub(b)
	for i, w := range []float32{1, 2, 3} {
		if a.Data[i] != w {
			t.Fatalf("Sub: got %v", a.Data)
		}
	}
	a.Mul(b)
	for i, w := range []float32{4, 10, 18} {
		if a.Data[i] != w {
			t.Fatalf("Mul: got %v", a.Data)
		}
	}
	a.Scale(0.5)
	for i, w := range []float32{2, 5, 9} {
		if a.Data[i] != w {
			t.Fatalf("Scale: got %v", a.Data)
		}
	}
	a.AddScaled(2, b)
	for i, w := range []float32{10, 15, 21} {
		if a.Data[i] != w {
			t.Fatalf("AddScaled: got %v", a.Data)
		}
	}
	a.AddScalar(-10)
	for i, w := range []float32{0, 5, 11} {
		if a.Data[i] != w {
			t.Fatalf("AddScalar: got %v", a.Data)
		}
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	a, b := New(3), New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched sizes did not panic")
		}
	}()
	a.Add(b)
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{-1, 2, -3}, 3)
	if got := a.Sum(); got != -2 {
		t.Errorf("Sum = %v, want -2", got)
	}
	if got := a.AbsSum(); got != 6 {
		t.Errorf("AbsSum = %v, want 6", got)
	}
	if got := a.SqNorm(); got != 14 {
		t.Errorf("SqNorm = %v, want 14", got)
	}
	if got := a.Norm(); math.Abs(got-math.Sqrt(14)) > 1e-12 {
		t.Errorf("Norm = %v", got)
	}
	if got := a.MaxAbs(); got != 3 {
		t.Errorf("MaxAbs = %v, want 3", got)
	}
	b := FromSlice([]float32{1, 1, 1}, 3)
	if got := Dot(a, b); got != -2 {
		t.Errorf("Dot = %v, want -2", got)
	}
}

func TestArgMax(t *testing.T) {
	cases := []struct {
		xs   []float32
		want int
	}{
		{[]float32{1}, 0},
		{[]float32{1, 3, 2}, 1},
		{[]float32{-5, -1, -3}, 1},
		{[]float32{2, 2, 2}, 0}, // ties resolve to first
		{[]float32{0, 0, 1, 1}, 2},
	}
	for _, c := range cases {
		if got := ArgMax(c.xs); got != c.want {
			t.Errorf("ArgMax(%v) = %d, want %d", c.xs, got, c.want)
		}
	}
}

func TestClip(t *testing.T) {
	a := FromSlice([]float32{-10, -0.5, 0.5, 10}, 4)
	a.Clip(1)
	want := []float32{-1, -0.5, 0.5, 1}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("Clip: got %v, want %v", a.Data, want)
		}
	}
}

func TestEqualAndAllClose(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1, 2}, 2)
	c := FromSlice([]float32{1, 2.0001}, 2)
	d := FromSlice([]float32{1, 2}, 1, 2)
	if !Equal(a, b) {
		t.Error("Equal(a,b) = false")
	}
	if Equal(a, c) {
		t.Error("Equal(a,c) = true")
	}
	if Equal(a, d) {
		t.Error("Equal should require identical shape")
	}
	if !AllClose(a, c, 1e-3) {
		t.Error("AllClose(a,c,1e-3) = false")
	}
	if AllClose(a, c, 1e-6) {
		t.Error("AllClose(a,c,1e-6) = true")
	}
}

func TestIsFinite(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	if !a.IsFinite() {
		t.Error("finite tensor reported non-finite")
	}
	a.Data[1] = float32(math.NaN())
	if a.IsFinite() {
		t.Error("NaN tensor reported finite")
	}
	a.Data[1] = float32(math.Inf(1))
	if a.IsFinite() {
		t.Error("Inf tensor reported finite")
	}
}

func TestZeroAndFill(t *testing.T) {
	a := Full(3, 4)
	a.Zero()
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("Zero did not clear")
		}
	}
	a.Fill(7)
	for _, v := range a.Data {
		if v != 7 {
			t.Fatal("Fill did not set")
		}
	}
}

func TestRandNDeterminism(t *testing.T) {
	a := RandN(rand.New(rand.NewSource(7)), 100)
	b := RandN(rand.New(rand.NewSource(7)), 100)
	if !Equal(a, b) {
		t.Error("RandN with same seed should be identical")
	}
	c := RandN(rand.New(rand.NewSource(8)), 100)
	if Equal(a, c) {
		t.Error("RandN with different seeds should differ")
	}
}

func TestHeInitScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fanIn := 200
	a := HeInit(rng, fanIn, 50, fanIn)
	var ss float64
	for _, v := range a.Data {
		ss += float64(v) * float64(v)
	}
	std := math.Sqrt(ss / float64(a.Size()))
	want := math.Sqrt(2.0 / float64(fanIn))
	if math.Abs(std-want)/want > 0.1 {
		t.Errorf("He std = %v, want ~%v", std, want)
	}
}

func TestXavierInitRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := XavierInit(rng, 10, 20, 10, 20)
	limit := float32(math.Sqrt(6.0 / 30.0))
	for _, v := range a.Data {
		if v < -limit || v >= limit {
			t.Fatalf("Xavier element %v outside [-%v, %v)", v, limit, limit)
		}
	}
}

func TestRandUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandUniform(rng, -2, 5, 1000)
	for _, v := range a.Data {
		if v < -2 || v >= 5 {
			t.Fatalf("uniform sample %v outside [-2,5)", v)
		}
	}
}
