package transport

import (
	"math/rand"
	"sync"
	"time"
)

// backoff computes retry delays: exponential growth from base, doubling each
// attempt and capped at max, with uniform jitter in [0.5, 1.5)× so a fleet
// of workers restarting together does not hammer the server in lockstep.
// Safe for concurrent use.
//
// The schedule is stateful across dial loops: consecutive failures keep
// escalating through next() until reset() declares the link healthy again.
// A worker only calls reset() after completing a round — merely getting a
// TCP connection is not health (a flapping server accepts and dies), which
// is why the reset lives at round granularity.
type backoff struct {
	base, max time.Duration
	mu        sync.Mutex
	rng       *rand.Rand
	attempt   int
}

// Default reconnect/dial backoff parameters.
const (
	defaultBackoffBase = 100 * time.Millisecond
	defaultBackoffMax  = 5 * time.Second
	// defaultDialAttempts bounds a single connection establishment;
	// with the default base/max it spans roughly 30 seconds of retrying.
	defaultDialAttempts = 12
)

// newBackoff builds a backoff schedule; zero base or max select the
// defaults.
func newBackoff(base, max time.Duration, seed int64) *backoff {
	if base <= 0 {
		base = defaultBackoffBase
	}
	if max <= 0 {
		max = defaultBackoffMax
	}
	if max < base {
		max = base
	}
	return &backoff{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// raw returns the un-jittered delay for an attempt: base·2^attempt capped
// at max.
func (b *backoff) raw(attempt int) time.Duration {
	d := b.base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= b.max {
			return b.max
		}
	}
	if d > b.max {
		d = b.max
	}
	return d
}

// delay returns the jittered sleep for the given 0-based attempt, always in
// [raw/2, 3·raw/2).
func (b *backoff) delay(attempt int) time.Duration {
	raw := b.raw(attempt)
	b.mu.Lock()
	f := 0.5 + b.rng.Float64()
	b.mu.Unlock()
	return time.Duration(float64(raw) * f)
}

// next returns the jittered delay for the current consecutive-failure count
// and advances it. The count persists across dial loops and sessions until
// reset().
func (b *backoff) next() time.Duration {
	b.mu.Lock()
	attempt := b.attempt
	b.attempt++
	b.mu.Unlock()
	return b.delay(attempt)
}

// reset returns the schedule to the base interval; called once a round
// completes over the connection, proving the link healthy.
func (b *backoff) reset() {
	b.mu.Lock()
	b.attempt = 0
	b.mu.Unlock()
}
