// Package checkpoint is the parameter server's durability layer: a
// full-state snapshot file plus a round-granularity write-ahead log, both
// encoded as wire-codec frames (KindSnapshot / KindRoundClose — same varint
// and tensor-slab format the network uses, so the on-disk state round-trips
// bit-exactly, NaN payloads and negative zeros included). Each on-disk
// record is one frame followed by a CRC-32C of its bytes: the wire leaves
// integrity to TCP, but a disk record must detect bit rot and torn writes
// itself, and the frame format alone cannot — a flipped bit inside a float
// slab still parses.
//
// Layout inside the checkpoint directory:
//
//	snapshot.ckpt      last full snapshot (one KindSnapshot frame)
//	snapshot.prev.ckpt the snapshot before it (corruption fallback)
//	wal.log            KindRoundClose frames appended since the snapshot
//
// Every WAL record carries the complete server state at the close of its
// round, not a diff: replay is "take the last valid record", a torn tail
// costs at most the round that was being written, and recovery never needs
// the snapshot and the WAL to compose. Snapshots exist to keep the WAL
// short — WriteSnapshot persists the state and resets the log.
//
// Crash matrix (see DESIGN.md for the full discussion):
//
//   - crash before AppendRound's fsync: the tail record may be torn;
//     Recover truncates it and resumes from the previous round.
//   - crash mid-WriteSnapshot: the temp file is ignored at recovery; the
//     previous snapshot (under either name) plus the intact WAL still
//     reconstruct the newest round.
//   - crash mid-round: nothing was appended for the open round; it is
//     re-run after recovery.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"fedmp/internal/transport/codec"
)

// castagnoli is the CRC-32C polynomial (hardware-accelerated on the
// platforms we run on).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errChecksum reports a record whose frame parsed but whose trailer CRC did
// not match — bit rot, or a torn write that landed inside valid-looking
// bytes.
var errChecksum = errors.New("checkpoint: record checksum mismatch")

// writeRecord appends one durability record — frame || CRC-32C(frame) — to w.
func writeRecord(w io.Writer, e *codec.Envelope) error {
	var buf bytes.Buffer
	if _, err := codec.WriteFrame(&buf, e); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(buf.Bytes(), castagnoli))
	if _, err := w.Write(buf.Bytes()); err != nil {
		return err
	}
	_, err := w.Write(crc[:])
	return err
}

// readRecord reads and verifies one durability record, returning the
// envelope and the total bytes consumed (frame plus trailer).
func readRecord(r io.Reader) (*codec.Envelope, int, error) {
	h := crc32.New(castagnoli)
	e, n, err := codec.ReadFrame(io.TeeReader(r, h))
	if err != nil {
		return nil, n, err
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return nil, n, err
	}
	if binary.LittleEndian.Uint32(crc[:]) != h.Sum32() {
		return nil, n + 4, errChecksum
	}
	return e, n + 4, nil
}

// File names inside the checkpoint directory.
const (
	snapName = "snapshot.ckpt"
	prevName = "snapshot.prev.ckpt"
	walName  = "wal.log"
	tmpName  = "snapshot.ckpt.tmp"
)

// Manager owns one checkpoint directory. It is not safe for concurrent use;
// the parameter server drives it from its single round loop.
type Manager struct {
	dir string
	wal *os.File
}

// RecoveryInfo describes what Recover found and repaired.
type RecoveryInfo struct {
	// SnapshotRound is the round of the snapshot file used (-1 if none).
	SnapshotRound int
	// WALRounds is the number of valid round-close records replayed.
	WALRounds int
	// TornTail reports that the WAL ended in a partial record, which was
	// truncated away (the in-flight round is lost — at most one round).
	TornTail bool
	// UsedFallback reports that snapshot.ckpt was unreadable and the
	// previous snapshot was used instead.
	UsedFallback bool
}

// Open prepares dir (creating it if needed) and opens the WAL for appending.
func Open(dir string) (*Manager, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	// The WAL is the one file written in place — append-only, one fsync'd
	// frame per round — so it does not go through writeFileAtomic.
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644) //fedmp:atomicwrite-ok
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Manager{dir: dir, wal: wal}, nil
}

// Close releases the WAL handle. The Manager is unusable afterwards.
func (m *Manager) Close() error {
	if m.wal == nil {
		return nil
	}
	err := m.wal.Close()
	m.wal = nil
	return err
}

// Recover loads the newest durable state: the latest readable snapshot,
// superseded by any newer round-close record replayed from the WAL. A torn
// WAL tail is truncated in place (so subsequent appends extend a valid log);
// a corrupt snapshot.ckpt falls back to snapshot.prev.ckpt. Returns a nil
// snapshot when the directory holds no usable state — a fresh start, not an
// error.
func (m *Manager) Recover() (*codec.Snapshot, RecoveryInfo, error) {
	if m.wal == nil {
		return nil, RecoveryInfo{}, fmt.Errorf("checkpoint: manager is closed")
	}
	info := RecoveryInfo{SnapshotRound: -1}

	snap, err := readSnapshotFile(filepath.Join(m.dir, snapName))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			info.UsedFallback = true
		}
		snap, err = readSnapshotFile(filepath.Join(m.dir, prevName))
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			// Both copies exist but neither is readable: the WAL may still
			// carry state, so keep going with no snapshot.
			snap = nil
		}
	}
	if snap != nil {
		info.SnapshotRound = snap.Round
	}

	walSnap, walRounds, torn, err := m.replayWAL()
	if err != nil {
		return nil, info, err
	}
	info.WALRounds = walRounds
	info.TornTail = torn
	if walSnap != nil && (snap == nil || walSnap.Round > snap.Round) {
		snap = walSnap
	}
	return snap, info, nil
}

// replayWAL scans the log, keeping the last valid round-close record. On the
// first malformed frame it truncates the file at the end of the last good
// one and stops: a torn tail loses only the record being written when the
// process died.
func (m *Manager) replayWAL() (last *codec.Snapshot, rounds int, torn bool, err error) {
	if _, err := m.wal.Seek(0, io.SeekStart); err != nil {
		return nil, 0, false, fmt.Errorf("checkpoint: %w", err)
	}
	var good int64
	for {
		e, n, err := readRecord(m.wal)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Anything else — a short read, bad magic, a corrupt payload —
			// is the torn tail. Drop it.
			torn = true
			break
		}
		good += int64(n)
		if e.Kind != codec.KindRoundClose {
			// A foreign frame kind in the WAL is corruption, not a tail.
			torn = true
			break
		}
		last = e.Snapshot
		rounds++
	}
	if torn {
		if err := m.wal.Truncate(good); err != nil {
			return nil, 0, true, fmt.Errorf("checkpoint: truncating torn WAL: %w", err)
		}
		if err := m.wal.Sync(); err != nil {
			return nil, 0, true, fmt.Errorf("checkpoint: %w", err)
		}
	}
	if _, err := m.wal.Seek(good, io.SeekStart); err != nil {
		return nil, 0, torn, fmt.Errorf("checkpoint: %w", err)
	}
	return last, rounds, torn, nil
}

// AppendRound durably logs the state at the close of one round: one
// round-close frame appended to the WAL and fsync'd before returning. After
// it returns, a crash at any point loses nothing up to and including
// s.Round.
func (m *Manager) AppendRound(s *codec.Snapshot) error {
	if m.wal == nil {
		return fmt.Errorf("checkpoint: manager is closed")
	}
	if err := writeRecord(m.wal, &codec.Envelope{Kind: codec.KindRoundClose, Snapshot: s}); err != nil {
		return fmt.Errorf("checkpoint: appending round %d: %w", s.Round, err)
	}
	if err := m.wal.Sync(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// WriteSnapshot persists a full snapshot and resets the WAL. The snapshot
// becomes durable before the log shrinks, so a crash anywhere in between
// leaves either the new snapshot or the old one plus the intact WAL — never
// less state than before the call.
func (m *Manager) WriteSnapshot(s *codec.Snapshot) error {
	if m.wal == nil {
		return fmt.Errorf("checkpoint: manager is closed")
	}
	cur := filepath.Join(m.dir, snapName)
	// Demote the current snapshot to the fallback slot first; if we crash
	// after this rename the state lives under prevName and recovery finds
	// it there.
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, filepath.Join(m.dir, prevName)); err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := writeFileAtomic(m.dir, tmpName, snapName, s); err != nil {
		return err
	}
	// The snapshot now covers every WAL record; start the log over.
	if err := m.wal.Truncate(0); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := m.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := m.wal.Sync(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// writeFileAtomic writes one snapshot frame through the crash-safe sequence:
// temp file in the same directory, fsync, close, rename over the final name,
// fsync the directory so the rename itself is durable. Every state file in
// this package must be written through here (the fedmp-lint atomicwrite rule
// enforces it).
//
//fedmp:atomicwrite-helper
func writeFileAtomic(dir, tmp, final string, s *codec.Snapshot) error {
	tmpPath := filepath.Join(dir, tmp)
	f, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := writeRecord(f, &codec.Envelope{Kind: codec.KindSnapshot, Snapshot: s}); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return fmt.Errorf("checkpoint: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		if cerr := f.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(dir, final)); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so completed renames survive power loss. Some
// filesystems refuse to fsync directories; that is not a durability bug on
// the filesystems we run tests on, so only real write errors surface.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	serr := d.Sync()
	if err := d.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if serr != nil && !errors.Is(serr, errors.ErrUnsupported) {
		return fmt.Errorf("checkpoint: %w", serr)
	}
	return nil
}

// readSnapshotFile reads one KindSnapshot frame, rejecting trailing garbage.
func readSnapshotFile(path string) (snap *codec.Snapshot, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			snap, err = nil, fmt.Errorf("checkpoint: %w", cerr)
		}
	}()
	e, _, err := readRecord(f)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading %s: %w", filepath.Base(path), err)
	}
	if e.Kind != codec.KindSnapshot {
		return nil, fmt.Errorf("checkpoint: %s holds a kind-%d frame, not a snapshot", filepath.Base(path), e.Kind)
	}
	var extra [1]byte
	if _, rerr := f.Read(extra[:]); rerr != io.EOF {
		return nil, fmt.Errorf("checkpoint: %s has trailing bytes after the snapshot", filepath.Base(path))
	}
	return e.Snapshot, nil
}
