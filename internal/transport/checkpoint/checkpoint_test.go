package checkpoint

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"fedmp/internal/bandit"
	"fedmp/internal/tensor"
	"fedmp/internal/transport/codec"
)

// testSnapshot builds a snapshot for round r whose payload exercises the
// encodings that must survive bit-exactly: NaN, infinities, negative zero,
// a sparse tensor, and per-worker bandit state.
func testSnapshot(r int) *codec.Snapshot {
	g := tensor.FromSlice([]float32{
		1.5, float32(math.NaN()), float32(math.Inf(1)),
		float32(math.Copysign(0, -1)), -2.25, float32(r),
	}, 2, 3)
	sparse := tensor.New(40)
	sparse.Data[3] = float32(math.Inf(-1))
	sparse.Data[17] = 0.5
	return &codec.Snapshot{
		Round:     r,
		Global:    []*tensor.Tensor{g, sparse},
		PrevLoss:  math.NaN(),
		RoundSum:  float64(r) * 1.25,
		PrevTimes: []float64{1, 2, math.Inf(1)},
		PrevComm:  []float64{0.5, math.Copysign(0, -1), 0.25},
		Workers: []codec.WorkerState{
			{Slot: 0, ID: "id-a", Name: "w0", Ratio: 0.4, Bandit: &bandit.State{
				Kind: "eucb", Round: r,
				Regions: []bandit.Region{{Lo: 0, Hi: 0.8}},
				Pulls:   []bandit.PullRecord{{Round: 1, Ratio: 0.3, Reward: math.NaN()}},
			}},
			{Slot: 1, Name: "w1", Ratio: 0.8},
		},
	}
}

// f32BitsEqual compares float32 slices by bit pattern.
func f32BitsEqual(t *testing.T, what string, a, b []float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d values, want %d", what, len(b), len(a))
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			t.Fatalf("%s: value %d is %x, want %x", what, i, math.Float32bits(b[i]), math.Float32bits(a[i]))
		}
	}
}

// checkSnapshot verifies the recovered snapshot is the bit-exact state for
// round r.
func checkSnapshot(t *testing.T, s *codec.Snapshot, r int) {
	t.Helper()
	if s == nil {
		t.Fatal("no snapshot recovered")
	}
	if s.Round != r {
		t.Fatalf("recovered round %d, want %d", s.Round, r)
	}
	want := testSnapshot(r)
	if len(s.Global) != len(want.Global) {
		t.Fatalf("%d global tensors, want %d", len(s.Global), len(want.Global))
	}
	for i := range want.Global {
		f32BitsEqual(t, "global tensor", want.Global[i].Data, s.Global[i].Data)
	}
	if math.Float64bits(s.PrevLoss) != math.Float64bits(want.PrevLoss) {
		t.Fatalf("PrevLoss bits %x, want NaN", math.Float64bits(s.PrevLoss))
	}
	for i := range want.PrevComm {
		if math.Float64bits(s.PrevComm[i]) != math.Float64bits(want.PrevComm[i]) {
			t.Fatalf("PrevComm[%d] lost bits", i)
		}
	}
	if len(s.Workers) != 2 || s.Workers[0].ID != "id-a" || s.Workers[0].Bandit == nil {
		t.Fatalf("worker table mangled: %+v", s.Workers)
	}
	if got := s.Workers[0].Bandit.Pulls[0].Reward; !math.IsNaN(got) {
		t.Fatalf("bandit NaN reward decoded as %v", got)
	}
}

// reopen closes m and opens the directory again, as a restarted PS would.
func reopen(t *testing.T, m *Manager, dir string) *Manager {
	t.Helper()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return m2
}

func TestSnapshotAndWALRecovery(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh directory: nothing to recover, not an error.
	s, info, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if s != nil || info.SnapshotRound != -1 || info.WALRounds != 0 {
		t.Fatalf("fresh dir recovered %+v / %+v", s, info)
	}

	if err := m.WriteSnapshot(testSnapshot(2)); err != nil {
		t.Fatal(err)
	}
	for r := 3; r <= 5; r++ {
		if err := m.AppendRound(testSnapshot(r)); err != nil {
			t.Fatal(err)
		}
	}

	m = reopen(t, m, dir)
	defer func() {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	s, info, err = m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, s, 5)
	if info.SnapshotRound != 2 || info.WALRounds != 3 || info.TornTail || info.UsedFallback {
		t.Fatalf("recovery info %+v", info)
	}

	// The WAL keeps extending cleanly after a recovery.
	if err := m.AppendRound(testSnapshot(6)); err != nil {
		t.Fatal(err)
	}
	s, _, err = m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, s, 6)
}

func TestWriteSnapshotResetsWAL(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	for r := 1; r <= 4; r++ {
		if err := m.AppendRound(testSnapshot(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.WriteSnapshot(testSnapshot(4)); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Fatalf("WAL holds %d bytes after a snapshot, want 0", st.Size())
	}
	s, info, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, s, 4)
	if info.SnapshotRound != 4 || info.WALRounds != 0 {
		t.Fatalf("recovery info %+v", info)
	}
}

func TestTornWALTailLosesAtMostOneRound(t *testing.T) {
	for _, cut := range []int64{1, 7, 40} { // mid-header and mid-payload tears
		dir := t.TempDir()
		m, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		for r := 1; r <= 3; r++ {
			if err := m.AppendRound(testSnapshot(r)); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}

		// Tear the tail: chop the last record short, as a crash mid-write
		// would.
		wal := filepath.Join(dir, "wal.log")
		st, err := os.Stat(wal)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(wal, st.Size()-cut); err != nil {
			t.Fatal(err)
		}

		m, err = Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s, info, err := m.Recover()
		if err != nil {
			t.Fatal(err)
		}
		checkSnapshot(t, s, 2) // round 3's record was torn; 1 and 2 survive
		if !info.TornTail || info.WALRounds != 2 {
			t.Fatalf("cut %d: recovery info %+v", cut, info)
		}

		// The truncated log accepts new appends and recovers them.
		if err := m.AppendRound(testSnapshot(3)); err != nil {
			t.Fatal(err)
		}
		s, info, err = m.Recover()
		if err != nil {
			t.Fatal(err)
		}
		checkSnapshot(t, s, 3)
		if info.TornTail {
			t.Fatalf("cut %d: tail still torn after repair: %+v", cut, info)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCorruptSnapshotFallsBackToPrevious(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteSnapshot(testSnapshot(3)); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteSnapshot(testSnapshot(7)); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the middle of the current snapshot's payload.
	snap := filepath.Join(dir, "snapshot.ckpt")
	b, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(snap, b, 0o644); err != nil {
		t.Fatal(err)
	}

	m = reopen(t, m, dir)
	defer func() {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	s, info, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, s, 3)
	if !info.UsedFallback || info.SnapshotRound != 3 {
		t.Fatalf("recovery info %+v", info)
	}
}

func TestCorruptSnapshotWithNewerWAL(t *testing.T) {
	// Even with both snapshot copies gone, WAL records carry full state.
	dir := t.TempDir()
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if err := m.AppendRound(testSnapshot(9)); err != nil {
		t.Fatal(err)
	}
	s, info, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	checkSnapshot(t, s, 9)
	if info.SnapshotRound != -1 || info.WALRounds != 1 {
		t.Fatalf("recovery info %+v", info)
	}
}

func TestClosedManagerRefusesWork(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := m.AppendRound(testSnapshot(1)); err == nil {
		t.Error("append on a closed manager accepted")
	}
	if err := m.WriteSnapshot(testSnapshot(1)); err == nil {
		t.Error("snapshot on a closed manager accepted")
	}
	if _, _, err := m.Recover(); err == nil {
		t.Error("recover on a closed manager accepted")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty directory accepted")
	}
}
