// Package codec implements the transport's hand-rolled wire format: a
// length-prefixed binary frame per message, replacing encoding/gob on the
// parameter-server/worker link.
//
// Why not gob: every assignment and result carries the model as
// []*tensor.Tensor, and gob walks those values element by element through
// reflection — the encode cost scales with parameter count at tens of
// nanoseconds per float. This codec writes tensor data as raw little-endian
// float32 slabs (one memmove on little-endian machines), draws its scratch
// buffers from a size-classed sync.Pool mirroring tensor.Pool, and encodes
// mostly-zero tensors (pruned sub-models, top-K updates) in a sparse mode
// that ships only the surviving values plus a one-bit-per-element mask. The
// result is that wire bytes track the *pruned* model size — the property the
// paper's communication results (Figs. 5 and 9) depend on — and that the
// simulation can price communication with the exact same size model the TCP
// runtime measures (FrameBytes is byte-exact against WriteFrame).
//
// Version 2 adds two lossy int8 tensor modes (§III-C's "fewer bits per
// parameter", pushed onto the wire): a quantized slab — one float32 scale
// plus one signed byte per element — and its sparse composition with the
// presence bitmask. They are opt-in per envelope (Envelope.Quantize) and
// chosen per tensor only when strictly byte-cheaper than the best float32
// mode; durability snapshots never use them, so checkpoints stay lossless.
// Version-1 frames still decode.
//
// Frame layout (all multi-byte integers little-endian):
//
//	offset size field
//	0      2    magic "FM"
//	2      1    format version (1 or 2)
//	3      1    message kind
//	4      4    payload length N
//	8      N    payload (kind-specific, see encode.go)
//
// Decoding is defensive: every length is bounds-checked against the frame
// before allocation, ranks/element counts/nesting depths are capped, and any
// malformed input yields an error — never a panic. See fuzz_test.go.
package codec

import (
	"errors"
	"fmt"

	"fedmp/internal/bandit"
	"fedmp/internal/tensor"
)

// Kind discriminates wire messages. The values are pinned — they are the
// on-the-wire protocol, shared by every PS and worker build.
type Kind byte

// Message kinds. KindSnapshot and KindRoundClose never cross the wire: they
// are the on-disk record kinds of the PS durability layer
// (internal/transport/checkpoint) — a full-state checkpoint file and the
// write-ahead log's per-round record. Giving them distinct kinds in the same
// frame format means a WAL fed to the snapshot reader (or vice versa) is
// rejected by the header, not misparsed.
const (
	KindHello Kind = iota + 1
	KindAssign
	KindResult
	KindShutdown
	KindPing
	KindPong
	KindSnapshot
	KindRoundClose

	kindMax = KindRoundClose
)

// Frame geometry and decode limits.
const (
	magic0, magic1 = 'F', 'M'

	// version is what the encoder stamps on every frame; minVersion is the
	// oldest frame format the decoder still accepts. Version 1 lacks the
	// int8 tensor modes and the Assign.Quantize field — a v1 assign payload
	// simply ends after Ratio, and decode leaves Quantize false.
	version    = 2
	minVersion = 1

	// HeaderLen is the fixed frame-header size in bytes.
	HeaderLen = 8

	// MaxFrame bounds one frame's payload; a peer announcing more is
	// malformed (the scaled model zoo tops out well under a megabyte).
	MaxFrame = 64 << 20

	// maxRank, maxElems, maxTensors and maxLayers cap what a decoded frame
	// may ask the decoder to allocate, so a corrupt or hostile length
	// field cannot amplify a small frame into an enormous allocation.
	maxRank    = 32
	maxElems   = 1 << 24
	maxTensors = 1 << 16
	maxLayers  = 1 << 12

	// maxWorkers and maxBanditItems bound the durability payloads the same
	// way: worker-table entries, bandit regions/pulls/arms.
	maxWorkers     = 1 << 16
	maxBanditItems = 1 << 20
)

// Envelope is the single wire frame; exactly one payload field matching
// Kind is set (Ping/Pong carry no payload). Snapshot serves both
// KindSnapshot and KindRoundClose — the two durability records share one
// payload shape and differ only in where they live (checkpoint file vs WAL).
type Envelope struct {
	Kind     Kind
	Hello    *Hello
	Assign   *Assign
	Result   *Result
	Shutdown *Shutdown
	Snapshot *Snapshot

	// Quantize is an encoder directive, not a wire field: when set, assign
	// and result tensors may ship in the lossy int8 modes wherever that is
	// strictly byte-cheaper (FrameBytes prices the same choice, so the size
	// model stays byte-exact). It has no effect on durability payloads —
	// snapshots always round-trip bit-exactly — and decoding never sets it;
	// the on-the-wire instruction to a worker is Assign.Quantize.
	Quantize bool
}

// Hello introduces a worker to the server.
type Hello struct {
	// Name is a human-readable worker label.
	Name string
	// ID is a stable worker identity: a reconnecting worker presenting an
	// ID the server has seen before re-enters its old slot mid-training
	// instead of being treated as a stranger. Empty IDs never match.
	ID string
}

// Assign is a per-round work order. It deliberately omits the R2SP residual
// and pruning plan — those are server-side bookkeeping the worker never
// needs (and the residual is as large as the full model).
type Assign struct {
	Round int
	// Desc is the model description: nil, *zoo.Spec or zoo.LMConfig.
	Desc    any
	Weights []*tensor.Tensor
	Iters   int
	ProxMu  float32
	UploadK float64
	Ratio   float64
	// Quantize tells the worker to quantize its result tensors on the wire
	// (and to absorb the quantization error locally, e.g. into the FlexCom
	// leftover). New in format version 2; decodes as false from v1 frames.
	Quantize bool
}

// Result is a worker's round result. At most one of Delta and Update is
// set: Delta is the dense trained-minus-assigned difference (the server
// reconstructs the new weights by adding it back, so the upload never
// repeats the weights the server just sent), Update is the FlexCom top-K
// sparse update in global shape.
type Result struct {
	Round       int
	Delta       []*tensor.Tensor
	Update      []*tensor.Tensor
	TrainLoss   float64
	CompSeconds float64
}

// Shutdown ends a worker's session.
type Shutdown struct {
	Reason string
}

// Snapshot is the parameter server's complete durable state at the close of
// a round: everything a restarted PS needs to resume from round Round+1
// without re-running completed work. It is the payload of both durability
// record kinds; the tensors round-trip bit-exactly (NaN payloads, negative
// zero and infinities included) through the same slab/sparse encoding the
// wire uses.
type Snapshot struct {
	// Round is the last completed round.
	Round int
	// Global is the aggregated global model after Round.
	Global []*tensor.Tensor
	// PrevLoss is the mean local training loss of Round (NaN before the
	// first aggregation — the encoding preserves it).
	PrevLoss float64
	// RoundSum is the accumulated wall-clock round time, feeding the
	// MeanRoundTime the strategies see.
	RoundSum float64
	// PrevTimes and PrevComm are each worker's most recent total and
	// communication times (indexed by slot).
	PrevTimes []float64
	PrevComm  []float64
	// Workers is the identity/ratio table: one entry per occupied slot.
	Workers []WorkerState
}

// WorkerState is one worker's durable identity and per-worker server state.
type WorkerState struct {
	// Slot is the registry slot the worker occupies; ID its stable identity
	// (empty for workers that never presented one — they cannot rejoin
	// across a restart); Name the human-readable label.
	Slot int
	ID   string
	Name string
	// Ratio is the last pruning ratio assigned to this worker.
	Ratio float64
	// Bandit is the worker's pruning-ratio policy state (nil for strategies
	// without per-worker bandits).
	Bandit *bandit.State
}

// errTruncated reports a payload shorter than its own length fields claim.
var errTruncated = errors.New("codec: truncated payload")

// payload returns result-message tag bytes discriminating which tensor list
// follows.
const (
	resultNone byte = iota
	resultDelta
	resultUpdate
)

// Desc tag bytes.
const (
	descNil byte = iota
	descSpec
	descLM
)

// checkKind validates that e's Kind has its matching payload pointer (and,
// for results, at most one tensor list). It is shared by the encoder and
// the size model so they can never disagree on what is encodable.
func checkKind(e *Envelope) error {
	switch e.Kind {
	case KindHello:
		if e.Hello == nil {
			return fmt.Errorf("codec: hello envelope without payload")
		}
	case KindAssign:
		if e.Assign == nil {
			return fmt.Errorf("codec: assign envelope without payload")
		}
	case KindResult:
		if e.Result == nil {
			return fmt.Errorf("codec: result envelope without payload")
		}
		if e.Result.Delta != nil && e.Result.Update != nil {
			return fmt.Errorf("codec: result carries both delta and update")
		}
	case KindShutdown:
		if e.Shutdown == nil {
			return fmt.Errorf("codec: shutdown envelope without payload")
		}
	case KindPing, KindPong:
		// No payload.
	case KindSnapshot, KindRoundClose:
		if e.Snapshot == nil {
			return fmt.Errorf("codec: durability envelope without payload")
		}
	default:
		return fmt.Errorf("codec: unknown message kind %d", e.Kind)
	}
	return nil
}
