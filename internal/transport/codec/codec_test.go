package codec

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"fedmp/internal/bandit"
	"fedmp/internal/prune"
	"fedmp/internal/tensor"
	"fedmp/internal/zoo"
)

// randTensor builds a tensor with the given zero density (fraction of
// elements forced to zero) and a sprinkling of special values.
func randTensor(rng *rand.Rand, zeroFrac float64, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		switch {
		case rng.Float64() < zeroFrac:
			// stays zero
		case rng.Float64() < 0.02:
			t.Data[i] = float32(math.NaN())
		case rng.Float64() < 0.02:
			t.Data[i] = float32(math.Inf(1 - 2*rng.Intn(2)))
		case rng.Float64() < 0.02:
			t.Data[i] = float32(math.Copysign(0, -1)) // negative zero
		default:
			t.Data[i] = rng.Float32()*2 - 1
		}
	}
	return t
}

// sampleSpec is a desc with every layer family, including a residual body.
func sampleSpec() *zoo.Spec {
	return &zoo.Spec{
		Name: "codec-test", InC: 1, InH: 8, InW: 8, Classes: 4,
		Layers: []zoo.LayerSpec{
			{Kind: zoo.KindConv, Name: "c1", Out: 4, K: 3, Stride: 1, Pad: 1},
			{Kind: zoo.KindBatchNorm, Name: "bn1"},
			{Kind: zoo.KindReLU, Name: "r1"},
			{Kind: zoo.KindResidual, Name: "res1", Body: []zoo.LayerSpec{
				{Kind: zoo.KindConv, Name: "res1c", Out: 4, K: 3, Stride: 1, Pad: 1},
				{Kind: zoo.KindReLU, Name: "res1r"},
			}},
			{Kind: zoo.KindMaxPool, Name: "p1", Window: 2},
			{Kind: zoo.KindDropout, Name: "d1", Rate: 0.25},
			{Kind: zoo.KindFlatten, Name: "f"},
			{Kind: zoo.KindDense, Name: "fc", Out: 4},
		},
	}
}

// sampleBandit builds a populated policy state exercising every field,
// including non-finite rewards.
func sampleBandit(rng *rand.Rand) *bandit.State {
	return &bandit.State{
		Kind:  "eucb",
		Round: 12,
		Regions: []bandit.Region{
			{Lo: 0, Hi: 0.4},
			{Lo: 0.4, Hi: 0.8},
		},
		Pulls: []bandit.PullRecord{
			{Round: 1, Ratio: 0.3, Reward: 0.9},
			{Round: 2, Ratio: 0.7, Reward: math.Inf(-1)},
			{Round: 3, Ratio: 0.5, Reward: math.NaN()},
		},
		Arms:   []float64{0.2, 0.4, 0.6},
		Counts: []int{3, 0, 9},
		Sums:   []float64{1.5, 0, rng.Float64()},
		Eps:    0.1,
		Ratio:  0.5,
	}
}

// sampleSnapshot builds a durability payload with a populated worker table,
// nil and non-nil bandit states, and special float values throughout.
func sampleSnapshot(rng *rand.Rand) *Snapshot {
	return &Snapshot{
		Round: 7,
		Global: []*tensor.Tensor{
			randTensor(rng, 0, 4, 1, 3, 3),
			randTensor(rng, 0.9, 17, 9),
		},
		PrevLoss:  math.NaN(), // pre-first-aggregation sentinel must survive
		RoundSum:  12.5,
		PrevTimes: []float64{1.5, math.Inf(1), 0.25},
		PrevComm:  []float64{0.1, 0.2, math.Copysign(0, -1)},
		Workers: []WorkerState{
			{Slot: 0, ID: "id-a", Name: "w0", Ratio: 0.4, Bandit: sampleBandit(rng)},
			{Slot: 1, Name: "w1", Ratio: 0.8}, // no ID, no bandit
			{Slot: 2, ID: "id-c", Name: "w2", Bandit: &bandit.State{Kind: "fixed", Ratio: 0.3}},
		},
	}
}

// sampleEnvelopes covers every kind and payload shape once.
func sampleEnvelopes(rng *rand.Rand) []*Envelope {
	dense := []*tensor.Tensor{
		randTensor(rng, 0, 4, 1, 3, 3),
		randTensor(rng, 0, 4),
		randTensor(rng, 0, 0), // zero-length
	}
	sparse := []*tensor.Tensor{
		randTensor(rng, 0.9, 17, 9),
		randTensor(rng, 1.0, 33), // all-zero
	}
	return []*Envelope{
		{Kind: KindHello, Hello: &Hello{Name: "worker-a", ID: "id-123"}},
		{Kind: KindHello, Hello: &Hello{}},
		{Kind: KindAssign, Assign: &Assign{
			Round: 3, Desc: sampleSpec(), Weights: dense,
			Iters: 5, ProxMu: 0.01, UploadK: 0.1, Ratio: 0.4,
		}},
		{Kind: KindAssign, Assign: &Assign{
			Round: 1, Desc: zoo.LMConfig{Vocab: 50, Embed: 8, Hidden: 16, SeqLen: 12},
			Weights: sparse, Iters: 1,
		}},
		{Kind: KindAssign, Assign: &Assign{Round: 200}},
		{Kind: KindResult, Result: &Result{
			Round: 3, Delta: append(append([]*tensor.Tensor{}, dense...), sparse...),
			TrainLoss: 1.25, CompSeconds: 0.5,
		}},
		{Kind: KindResult, Result: &Result{Round: 4, Update: sparse, TrainLoss: math.NaN()}},
		{Kind: KindResult, Result: &Result{Round: 9}},
		{Kind: KindShutdown, Shutdown: &Shutdown{Reason: "done"}},
		{Kind: KindPing},
		{Kind: KindPong},
		{Kind: KindSnapshot, Snapshot: sampleSnapshot(rng)},
		{Kind: KindRoundClose, Snapshot: sampleSnapshot(rng)},
		{Kind: KindRoundClose, Snapshot: &Snapshot{}}, // empty state
	}
}

// f64sBitEqual compares float64 lists bit-exactly.
func f64sBitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// banditsEqual compares policy states bit-exactly (NaN rewards count).
func banditsEqual(a, b *bandit.State) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Kind != b.Kind || a.Round != b.Round ||
		len(a.Regions) != len(b.Regions) || len(a.Pulls) != len(b.Pulls) ||
		!reflect.DeepEqual(a.Counts, b.Counts) ||
		!f64sBitEqual(a.Arms, b.Arms) || !f64sBitEqual(a.Sums, b.Sums) ||
		math.Float64bits(a.Eps) != math.Float64bits(b.Eps) ||
		math.Float64bits(a.Ratio) != math.Float64bits(b.Ratio) {
		return false
	}
	for i := range a.Regions {
		if a.Regions[i] != b.Regions[i] {
			return false
		}
	}
	for i := range a.Pulls {
		p, q := a.Pulls[i], b.Pulls[i]
		if p.Round != q.Round ||
			math.Float64bits(p.Ratio) != math.Float64bits(q.Ratio) ||
			math.Float64bits(p.Reward) != math.Float64bits(q.Reward) {
			return false
		}
	}
	return true
}

// snapshotsEqual compares durability payloads bit-exactly.
func snapshotsEqual(t *testing.T, want, got *Snapshot) {
	t.Helper()
	if want.Round != got.Round ||
		math.Float64bits(want.PrevLoss) != math.Float64bits(got.PrevLoss) ||
		math.Float64bits(want.RoundSum) != math.Float64bits(got.RoundSum) {
		t.Errorf("snapshot scalars round-trip: %+v != %+v", got, want)
	}
	if !tensorsBitEqual(want.Global, got.Global) {
		t.Errorf("snapshot global tensors round-trip lost bits")
	}
	if !f64sBitEqual(want.PrevTimes, got.PrevTimes) || !f64sBitEqual(want.PrevComm, got.PrevComm) {
		t.Errorf("snapshot per-worker times round-trip lost bits")
	}
	if len(want.Workers) != len(got.Workers) {
		t.Fatalf("snapshot round-trip: %d workers, want %d", len(got.Workers), len(want.Workers))
	}
	for i := range want.Workers {
		w, g := &want.Workers[i], &got.Workers[i]
		if w.Slot != g.Slot || w.ID != g.ID || w.Name != g.Name ||
			math.Float64bits(w.Ratio) != math.Float64bits(g.Ratio) {
			t.Errorf("worker %d round-trip: %+v != %+v", i, g, w)
		}
		if !banditsEqual(w.Bandit, g.Bandit) {
			t.Errorf("worker %d bandit state round-trip differs", i)
		}
	}
}

// tensorsBitEqual compares tensor lists by exact bit pattern, so NaN
// payloads and negative zeros count.
func tensorsBitEqual(a, b []*tensor.Tensor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i].Shape, b[i].Shape) || len(a[i].Data) != len(b[i].Data) {
			return false
		}
		for j := range a[i].Data {
			if math.Float32bits(a[i].Data[j]) != math.Float32bits(b[i].Data[j]) {
				return false
			}
		}
	}
	return true
}

func envelopesEqual(t *testing.T, want, got *Envelope) {
	t.Helper()
	if want.Kind != got.Kind {
		t.Fatalf("kind %d round-tripped to %d", want.Kind, got.Kind)
	}
	switch want.Kind {
	case KindHello:
		if *want.Hello != *got.Hello {
			t.Errorf("hello round-trip: %+v != %+v", got.Hello, want.Hello)
		}
	case KindAssign:
		w, g := want.Assign, got.Assign
		if w.Round != g.Round || w.Iters != g.Iters || w.ProxMu != g.ProxMu ||
			w.UploadK != g.UploadK || w.Ratio != g.Ratio {
			t.Errorf("assign scalars round-trip: %+v != %+v", g, w)
		}
		if !reflect.DeepEqual(w.Desc, g.Desc) {
			t.Errorf("desc round-trip: %#v != %#v", g.Desc, w.Desc)
		}
		if !tensorsBitEqual(w.Weights, g.Weights) {
			t.Errorf("weights round-trip lost bits")
		}
	case KindResult:
		w, g := want.Result, got.Result
		if w.Round != g.Round ||
			math.Float64bits(w.TrainLoss) != math.Float64bits(g.TrainLoss) ||
			w.CompSeconds != g.CompSeconds {
			t.Errorf("result scalars round-trip: %+v != %+v", g, w)
		}
		if !tensorsBitEqual(w.Delta, g.Delta) || !tensorsBitEqual(w.Update, g.Update) {
			t.Errorf("result tensors round-trip lost bits")
		}
	case KindShutdown:
		if *want.Shutdown != *got.Shutdown {
			t.Errorf("shutdown round-trip: %+v != %+v", got.Shutdown, want.Shutdown)
		}
	case KindSnapshot, KindRoundClose:
		snapshotsEqual(t, want.Snapshot, got.Snapshot)
	}
}

// TestRoundTrip pins that every message kind survives encode/decode
// bit-exactly and that FrameBytes predicts the written size to the byte —
// the property that lets the simulation charge the same traffic the TCP
// runtime measures.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i, e := range sampleEnvelopes(rng) {
		var buf bytes.Buffer
		wrote, err := WriteFrame(&buf, e)
		if err != nil {
			t.Fatalf("envelope %d: write: %v", i, err)
		}
		predicted, err := FrameBytes(e)
		if err != nil {
			t.Fatalf("envelope %d: size: %v", i, err)
		}
		if int64(wrote) != predicted || int64(buf.Len()) != predicted {
			t.Fatalf("envelope %d: wrote %d bytes, buffered %d, size model says %d",
				i, wrote, buf.Len(), predicted)
		}
		got, read, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("envelope %d: read: %v", i, err)
		}
		if int64(read) != predicted {
			t.Fatalf("envelope %d: read %d bytes, want %d", i, read, predicted)
		}
		envelopesEqual(t, e, got)
	}
}

// TestSparseDenseEquivalence decodes the same values from both modes: a
// tensor sparse enough to take the bitmask path must round-trip to exactly
// the same data a dense copy of it does.
func TestSparseDenseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, zeroFrac := range []float64{0, 0.3, 0.77, 0.95, 1} {
		orig := randTensor(rng, zeroFrac, 13, 7)
		// Sweeping the zero fraction crosses the mode threshold, so both
		// the dense and the sparse encoder must reproduce the same data.
		var buf bytes.Buffer
		if _, err := WriteFrame(&buf, &Envelope{Kind: KindResult, Result: &Result{Round: 1, Delta: []*tensor.Tensor{orig}}}); err != nil {
			t.Fatal(err)
		}
		got, _, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !tensorsBitEqual([]*tensor.Tensor{orig}, got.Result.Delta) {
			t.Errorf("zeroFrac %.2f: decoded tensor differs from source", zeroFrac)
		}
	}
}

// TestSparseModeShrinksFrames pins the point of the sparse mode: a mostly
// zero payload (a pruned model's update) costs a small fraction of its dense
// frame, and an incompressible payload is never made larger than dense plus
// the mode byte.
func TestSparseModeShrinksFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	frame := func(zeroFrac float64) int64 {
		upd := []*tensor.Tensor{randTensor(rng, zeroFrac, 64, 64)}
		n, err := FrameBytes(&Envelope{Kind: KindResult, Result: &Result{Round: 1, Update: upd}})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	dense, mostlyZero := frame(0), frame(0.95)
	if mostlyZero >= dense/3 {
		t.Errorf("95%%-zero frame is %d bytes, dense %d; want < 1/3", mostlyZero, dense)
	}
}

// TestEncodeErrors pins that unencodable envelopes error out instead of
// panicking or emitting garbage.
func TestEncodeErrors(t *testing.T) {
	bad := []*Envelope{
		{Kind: KindHello}, // missing payload
		{Kind: Kind(99)},  // unknown kind
		{Kind: KindAssign, Assign: &Assign{Desc: 42}}, // unsupported desc type
		{Kind: KindAssign, Assign: &Assign{Desc: (*zoo.Spec)(nil)}},
		{Kind: KindAssign, Assign: &Assign{Weights: []*tensor.Tensor{nil}}},
		{Kind: KindAssign, Assign: &Assign{Weights: []*tensor.Tensor{
			{Shape: []int{3}, Data: make([]float32, 2)}, // shape/data mismatch
		}}},
		{Kind: KindResult, Result: &Result{
			Delta:  []*tensor.Tensor{tensor.New(1)},
			Update: []*tensor.Tensor{tensor.New(1)}, // both payloads set
		}},
		{Kind: KindSnapshot},   // missing payload
		{Kind: KindRoundClose}, // missing payload
		{Kind: KindSnapshot, Snapshot: &Snapshot{
			Global: []*tensor.Tensor{nil},
		}},
	}
	for i, e := range bad {
		if _, err := WriteFrame(&bytes.Buffer{}, e); err == nil {
			t.Errorf("envelope %d encoded without error", i)
		}
		if _, err := FrameBytes(e); err == nil {
			t.Errorf("envelope %d sized without error", i)
		}
	}
}

// expectedQuantized returns the values a tensor should decode to after an
// Envelope.Quantize encode: the int8 round trip when the planner picked a
// quantized mode, the original bits otherwise.
func expectedQuantized(t *tensor.Tensor) []float32 {
	p := planTensor(t.Data, len(t.Data), true)
	out := make([]float32, len(t.Data))
	if p.mode != modeQuant8 && p.mode != modeQuantSparse8 {
		copy(out, t.Data)
		return out
	}
	inv := 1 / float64(p.scale)
	for i, v := range t.Data {
		out[i] = float32(prune.QuantizeElem(v, inv)) * p.scale
	}
	return out
}

// TestQuantizedRoundTrip pins the lossy contract: with Envelope.Quantize
// set, every tensor decodes to exactly the int8 reconstruction the shared
// quantization helpers predict (or to its original bits where quantization
// was refused or not cheaper), the frame still matches its size model to the
// byte, and Assign.Quantize survives the wire.
func TestQuantizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	finite := func(zeroFrac float64, shape ...int) *tensor.Tensor {
		t := tensor.New(shape...)
		for i := range t.Data {
			if rng.Float64() >= zeroFrac {
				t.Data[i] = rng.Float32()*2 - 1
			}
		}
		return t
	}
	weights := []*tensor.Tensor{
		finite(0, 32, 16),  // dense: quant-dense should win
		finite(0.9, 64, 8), // sparse: quant-sparse should win
		finite(1.0, 33),    // all-zero: not quantizable, stays sparse
		tensor.New(3),      // tiny all-zero
		tensor.New(0),      // zero-length
		{Shape: []int{4}, Data: []float32{1, float32(math.NaN()), 2, -3}}, // non-finite: refused
	}
	e := &Envelope{Kind: KindAssign, Quantize: true, Assign: &Assign{
		Round: 5, Desc: sampleSpec(), Weights: weights,
		Iters: 2, ProxMu: 0.01, UploadK: 0.1, Ratio: 0.3, Quantize: true,
	}}
	var buf bytes.Buffer
	wrote, err := WriteFrame(&buf, e)
	if err != nil {
		t.Fatal(err)
	}
	predicted, err := FrameBytes(e)
	if err != nil {
		t.Fatal(err)
	}
	if int64(wrote) != predicted {
		t.Fatalf("wrote %d bytes, size model says %d", wrote, predicted)
	}
	got, _, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Assign.Quantize {
		t.Error("Assign.Quantize lost on the wire")
	}
	if got.Quantize {
		t.Error("decode set the encoder-side Envelope.Quantize directive")
	}
	sawQuant := false
	for i, w := range weights {
		want := expectedQuantized(w)
		g := got.Assign.Weights[i].Data
		if len(g) != len(want) {
			t.Fatalf("tensor %d: %d elements, want %d", i, len(g), len(want))
		}
		for j := range want {
			if math.Float32bits(g[j]) != math.Float32bits(want[j]) {
				t.Fatalf("tensor %d elem %d: %x, want %x", i, j,
					math.Float32bits(g[j]), math.Float32bits(want[j]))
			}
		}
		p := planTensor(w.Data, len(w.Data), true)
		if p.mode == modeQuant8 || p.mode == modeQuantSparse8 {
			sawQuant = true
		}
	}
	if !sawQuant {
		t.Error("no tensor picked a quantized mode; test inputs too weak")
	}
	// The non-finite and all-zero tensors must have kept full precision.
	for _, i := range []int{2, 5} {
		p := planTensor(weights[i].Data, len(weights[i].Data), true)
		if p.mode == modeQuant8 || p.mode == modeQuantSparse8 {
			t.Errorf("tensor %d quantized despite being unquantizable", i)
		}
	}
}

// TestQuantizedFramesShrink pins the payoff: a quantized result frame costs
// roughly a quarter of its float32 encoding, in both the dense and the
// sparse (FlexCom keep-0.2) regimes.
func TestQuantizedFramesShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, zeroFrac := range []float64{0, 0.8} {
		upd := []*tensor.Tensor{tensor.New(64, 64)}
		for i := range upd[0].Data {
			if rng.Float64() >= zeroFrac {
				upd[0].Data[i] = rng.Float32()*2 - 1
			}
		}
		res := &Result{Round: 1, Update: upd}
		plain, err := FrameBytes(&Envelope{Kind: KindResult, Result: res})
		if err != nil {
			t.Fatal(err)
		}
		quant, err := FrameBytes(&Envelope{Kind: KindResult, Result: res, Quantize: true})
		if err != nil {
			t.Fatal(err)
		}
		if quant*10 > plain*4 {
			t.Errorf("zeroFrac %.1f: quantized frame %d bytes vs %d float32; want < 40%%",
				zeroFrac, quant, plain)
		}
	}
}

// TestDequantizedMatchesWire pins the simulation's mirror: Dequantized must
// deliver bit-for-bit the values a real encode/decode round trip of a
// Quantize-enabled frame produces, alias tensors the plan keeps at full
// precision, and never touch its inputs.
func TestDequantizedMatchesWire(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	weights := []*tensor.Tensor{
		tensor.New(16, 8),
		tensor.New(128),
		tensor.New(33), // stays all-zero: unquantizable, must alias
		tensor.New(0),
	}
	for _, w := range weights[:2] {
		for i := range w.Data {
			if rng.Float64() >= 0.3 {
				w.Data[i] = rng.Float32()*2 - 1
			}
		}
	}
	orig := make([][]float32, len(weights))
	for i, w := range weights {
		orig[i] = append([]float32(nil), w.Data...)
	}

	var buf bytes.Buffer
	e := &Envelope{Kind: KindResult, Quantize: true, Result: &Result{Round: 1, Update: weights}}
	if _, err := WriteFrame(&buf, e); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mirror := Dequantized(weights)
	if !tensorsBitEqual(got.Result.Update, mirror) {
		t.Error("Dequantized disagrees with the wire round trip")
	}
	for i, w := range weights {
		p := planTensor(w.Data, len(w.Data), true)
		quantized := p.mode == modeQuant8 || p.mode == modeQuantSparse8
		if quantized && mirror[i] == w {
			t.Errorf("tensor %d: quantized mode but Dequantized aliased the input", i)
		}
		if !quantized && mirror[i] != w {
			t.Errorf("tensor %d: full-precision mode but Dequantized copied", i)
		}
		for j, v := range orig[i] {
			if math.Float32bits(w.Data[j]) != math.Float32bits(v) {
				t.Fatalf("tensor %d elem %d mutated", i, j)
			}
		}
	}
	if p := planTensor(weights[0].Data, len(weights[0].Data), true); p.mode != modeQuant8 && p.mode != modeQuantSparse8 {
		t.Error("dense test tensor did not pick a quantized mode; inputs too weak")
	}
}

// TestVersion1Compat pins backward compatibility: a version-1 assign frame
// (no trailing Quantize flag) still decodes, with Quantize false — old WALs
// and checkpoints stay readable — while a v1 frame carrying v2 bytes or an
// unknown version is rejected.
func TestVersion1Compat(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	e := &Envelope{Kind: KindAssign, Assign: &Assign{
		Round: 3, Weights: []*tensor.Tensor{randTensor(rng, 0.5, 9, 4)},
		Iters: 2, Ratio: 0.5,
	}}
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, e); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	if frame[2] != version {
		t.Fatalf("encoder stamped version %d, want %d", frame[2], version)
	}

	// Rewrite as v1: drop the trailing Quantize byte, fix length and version.
	v1 := append([]byte(nil), frame[:len(frame)-1]...)
	v1[2] = 1
	binary.LittleEndian.PutUint32(v1[4:], uint32(len(v1)-HeaderLen))
	got, _, err := ReadFrame(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	if got.Assign.Quantize {
		t.Error("v1 frame decoded with Quantize set")
	}
	if !tensorsBitEqual(e.Assign.Weights, got.Assign.Weights) {
		t.Error("v1 weights round-trip lost bits")
	}

	// A v1 header on the full v2 payload has a trailing byte: rejected.
	v1full := append([]byte(nil), frame...)
	v1full[2] = 1
	if _, _, err := ReadFrame(bytes.NewReader(v1full)); err == nil {
		t.Error("v1 frame with v2 payload accepted")
	}
	// Versions beyond the encoder's are rejected outright.
	v3 := append([]byte(nil), frame...)
	v3[2] = 3
	if _, _, err := ReadFrame(bytes.NewReader(v3)); err == nil {
		t.Error("version-3 frame accepted")
	}
}

// TestDecoderReuse runs every sample envelope through one Decoder twice, in
// sequence, comparing each decode against the one-shot path. Shapes, tensor
// counts and string sets vary frame to frame, so this exercises the recycled
// object graph's resizing and clearing.
func TestDecoderReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	samples := sampleEnvelopes(rng)
	var stream bytes.Buffer
	for range 2 {
		for _, e := range samples {
			if _, err := WriteFrame(&stream, e); err != nil {
				t.Fatal(err)
			}
		}
	}
	d := NewDecoder(&stream)
	for pass := range 2 {
		for i, want := range samples {
			got, _, err := d.ReadFrame()
			if err != nil {
				t.Fatalf("pass %d envelope %d: %v", pass, i, err)
			}
			envelopesEqual(t, want, got)
		}
	}
	if _, _, err := d.ReadFrame(); err == nil {
		t.Fatal("decoder read past the stream end")
	}
}

// TestDecoderSteadyStateAllocs pins the decode-side allocation fix: once the
// Decoder has seen a round's assign frame, decoding the next round's (same
// shapes, same spec — the worker's steady state) allocates nothing.
func TestDecoderSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	e := &Envelope{Kind: KindAssign, Assign: &Assign{
		Round: 2, Desc: sampleSpec(),
		Weights: []*tensor.Tensor{randTensor(rng, 0, 32, 16), randTensor(rng, 0.9, 512)},
		Iters:   3,
	}}
	var frame bytes.Buffer
	if _, err := WriteFrame(&frame, e); err != nil {
		t.Fatal(err)
	}
	raw := frame.Bytes()
	rd := bytes.NewReader(raw)
	d := NewDecoder(rd)
	avg := testing.AllocsPerRun(50, func() {
		rd.Reset(raw)
		if _, _, err := d.ReadFrame(); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("Decoder.ReadFrame allocates %.1f objects per frame in steady state, want 0", avg)
	}
}

// TestWriteFrameSteadyStateAllocs pins the sync.Pool buffer reuse: after
// warm-up, encoding a frame costs no heap allocation for the frame buffer
// (the one allocation measured is Write-side bookkeeping in the discard
// counter, which is zero too).
func TestWriteFrameSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e := &Envelope{Kind: KindAssign, Assign: &Assign{
		Round: 2, Desc: sampleSpec(),
		Weights: []*tensor.Tensor{randTensor(rng, 0, 32, 16), randTensor(rng, 0.9, 512)},
		Iters:   3,
	}}
	var sink int
	avg := testing.AllocsPerRun(50, func() {
		n, err := WriteFrame(discard{}, e)
		if err != nil {
			t.Fatal(err)
		}
		sink = n
	})
	_ = sink
	if avg > 0 {
		t.Errorf("WriteFrame allocates %.1f objects per frame in steady state, want 0", avg)
	}
}

// discard counts nothing and retains nothing.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
