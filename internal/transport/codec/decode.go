package codec

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fedmp/internal/bandit"
	"fedmp/internal/tensor"
	"fedmp/internal/zoo"
)

// reader parses a payload slice with explicit bounds checks. Every length
// field is validated against the bytes actually present before anything is
// allocated, so a corrupt frame yields an error — never a panic, and never
// an allocation much larger than the frame itself.
//
// ver is the frame's format version (version-2 payloads carry fields v1
// lacks). d, when non-nil, is the owning Decoder: destination objects are
// recycled from it instead of freshly allocated, and strings are interned.
type reader struct {
	buf []byte
	off int
	ver byte
	d   *Decoder
}

func (r *reader) rem() int { return len(r.buf) - r.off }

// take consumes n bytes, aliasing into the frame buffer (callers must copy
// anything they keep — the buffer is pooled).
func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.rem() < n {
		return nil, errTruncated
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) getByte() (byte, error) {
	if r.rem() < 1 {
		return 0, errTruncated
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) getUvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("codec: malformed varint")
	}
	r.off += n
	return v, nil
}

func (r *reader) getInt() (int, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("codec: malformed varint")
	}
	r.off += n
	if int64(int(v)) != v {
		return 0, fmt.Errorf("codec: varint %d overflows int", v)
	}
	return int(v), nil
}

func (r *reader) getF32() (float32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(b)), nil
}

func (r *reader) getF64() (float64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), nil
}

func (r *reader) getString() (string, error) {
	n, err := r.getUvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.rem()) {
		return "", errTruncated
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	if r.d != nil {
		return r.d.intern(b), nil
	}
	return string(b), nil
}

// newTensor returns the destination for one decoded tensor: recycled from
// the Decoder when there is one, fresh otherwise.
func (r *reader) newTensor() *tensor.Tensor {
	if r.d != nil {
		return r.d.nextTensor()
	}
	return &tensor.Tensor{}
}

// resizeInts returns s resliced to length n, reallocating only when its
// capacity is too small. Contents are unspecified.
func resizeInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// resizeF32s is resizeInts for float32 slices. Contents are unspecified —
// callers either overwrite every element or clear first.
func resizeF32s(s []float32, n int) []float32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float32, n)
}

// quantScale reads and validates an int8-mode scale: it must be finite and
// positive (the encoder never quantizes otherwise), so a hostile scale
// cannot smuggle NaN/Inf into every reconstructed element.
func (r *reader) quantScale() (float32, error) {
	scale, err := r.getF32()
	if err != nil {
		return 0, err
	}
	if math.IsNaN(float64(scale)) || math.IsInf(float64(scale), 0) || scale <= 0 {
		return 0, fmt.Errorf("codec: invalid quantization scale %v", scale)
	}
	return scale, nil
}

// sparseCount reads the announced nonzero count of a sparse-mode tensor and
// validates it against the element count (shared by the float32 and int8
// sparse modes); the mask's set-bit population is checked against it by the
// caller's fill loop.
func (r *reader) sparseCount(n int) (int, error) {
	nnzU, err := r.getUvarint()
	if err != nil {
		return 0, err
	}
	if nnzU > uint64(n) {
		return 0, fmt.Errorf("codec: %d nonzeros in a %d-element tensor", nnzU, n)
	}
	return int(nnzU), nil
}

// takeMask consumes the (n+7)/8-byte presence bitmask and rejects bits set
// past the last element.
func (r *reader) takeMask(n int) ([]byte, error) {
	mask, err := r.take((n + 7) / 8)
	if err != nil {
		return nil, err
	}
	if n%8 != 0 && len(mask) > 0 && mask[len(mask)-1]>>(n%8) != 0 {
		return nil, fmt.Errorf("codec: sparse mask has bits set past the last element")
	}
	return mask, nil
}

// decodeTensor reads one tensor in any mode, validating rank, element
// count, quantization scale and — for sparse payloads — that the mask's
// set-bit population matches the announced nonzero count exactly.
func decodeTensor(r *reader) (*tensor.Tensor, error) {
	rank, err := r.getUvarint()
	if err != nil {
		return nil, err
	}
	if rank > maxRank {
		return nil, fmt.Errorf("codec: tensor rank %d exceeds %d", rank, maxRank)
	}
	t := r.newTensor()
	t.Shape = resizeInts(t.Shape, int(rank))
	n64 := int64(1) // bounded multiplies: ≤ maxElems² ≪ 2⁶³ even on 32-bit ints
	for i := range t.Shape {
		d, err := r.getUvarint()
		if err != nil {
			return nil, err
		}
		if d > maxElems {
			return nil, fmt.Errorf("codec: dimension %d exceeds %d", d, maxElems)
		}
		t.Shape[i] = int(d)
		n64 *= int64(d)
		if n64 > maxElems {
			return nil, fmt.Errorf("codec: tensor with over %d elements", maxElems)
		}
	}
	n := int(n64)
	mode, err := r.getByte()
	if err != nil {
		return nil, err
	}
	switch mode {
	case modeDense:
		b, err := r.take(4 * n)
		if err != nil {
			return nil, err
		}
		t.Data = resizeF32s(t.Data, n)
		getF32s(t.Data, b)
		return t, nil
	case modeSparse:
		nnz, err := r.sparseCount(n)
		if err != nil {
			return nil, err
		}
		mask, err := r.takeMask(n)
		if err != nil {
			return nil, err
		}
		vals, err := r.take(4 * nnz)
		if err != nil {
			return nil, err
		}
		t.Data = resizeF32s(t.Data, n)
		clear(t.Data)
		vi := 0
		for i := 0; i < n; i++ {
			if mask[i>>3]&(1<<(i&7)) != 0 {
				if vi >= nnz {
					return nil, fmt.Errorf("codec: sparse mask has more than %d set bits", nnz)
				}
				t.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(vals[4*vi:]))
				vi++
			}
		}
		if vi != nnz {
			return nil, fmt.Errorf("codec: sparse mask has %d set bits, header says %d", vi, nnz)
		}
		return t, nil
	case modeQuant8:
		scale, err := r.quantScale()
		if err != nil {
			return nil, err
		}
		b, err := r.take(n)
		if err != nil {
			return nil, err
		}
		t.Data = resizeF32s(t.Data, n)
		for i := range t.Data {
			t.Data[i] = float32(int8(b[i])) * scale
		}
		return t, nil
	case modeQuantSparse8:
		nnz, err := r.sparseCount(n)
		if err != nil {
			return nil, err
		}
		scale, err := r.quantScale()
		if err != nil {
			return nil, err
		}
		mask, err := r.takeMask(n)
		if err != nil {
			return nil, err
		}
		vals, err := r.take(nnz)
		if err != nil {
			return nil, err
		}
		t.Data = resizeF32s(t.Data, n)
		clear(t.Data)
		vi := 0
		for i := 0; i < n; i++ {
			if mask[i>>3]&(1<<(i&7)) != 0 {
				if vi >= nnz {
					return nil, fmt.Errorf("codec: sparse mask has more than %d set bits", nnz)
				}
				t.Data[i] = float32(int8(vals[vi])) * scale
				vi++
			}
		}
		if vi != nnz {
			return nil, fmt.Errorf("codec: sparse mask has %d set bits, header says %d", vi, nnz)
		}
		return t, nil
	default:
		return nil, fmt.Errorf("codec: unknown tensor mode %d", mode)
	}
}

func decodeTensors(r *reader) ([]*tensor.Tensor, error) {
	cnt, err := r.getUvarint()
	if err != nil {
		return nil, err
	}
	// Every tensor costs at least two bytes, so a count beyond the frame's
	// remaining bytes is corrupt — reject before allocating the slice.
	if cnt > maxTensors || cnt > uint64(r.rem()) {
		return nil, fmt.Errorf("codec: implausible tensor count %d", cnt)
	}
	var ts []*tensor.Tensor
	if r.d != nil {
		ts = r.d.nextTensorList(int(cnt))
	} else {
		ts = make([]*tensor.Tensor, cnt)
	}
	for i := range ts {
		if ts[i], err = decodeTensor(r); err != nil {
			return nil, err
		}
	}
	return ts, nil
}

func decodeDesc(r *reader) (any, error) {
	tag, err := r.getByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case descNil:
		return nil, nil
	case descSpec:
		var s *zoo.Spec
		if r.d != nil {
			s = &r.d.spec
			*s = zoo.Spec{}
		} else {
			s = &zoo.Spec{}
		}
		if s.Name, err = r.getString(); err != nil {
			return nil, err
		}
		for _, dst := range []*int{&s.InC, &s.InH, &s.InW, &s.Classes} {
			if *dst, err = r.getInt(); err != nil {
				return nil, err
			}
		}
		if s.Layers, err = decodeLayers(r, 0); err != nil {
			return nil, err
		}
		return s, nil
	case descLM:
		var c zoo.LMConfig
		for _, dst := range []*int{&c.Vocab, &c.Embed, &c.Hidden, &c.SeqLen} {
			if *dst, err = r.getInt(); err != nil {
				return nil, err
			}
		}
		return c, nil
	default:
		return nil, fmt.Errorf("codec: unknown description tag %d", tag)
	}
}

func decodeLayers(r *reader, depth int) ([]zoo.LayerSpec, error) {
	cnt, err := r.getUvarint()
	if err != nil {
		return nil, err
	}
	if cnt == 0 {
		return nil, nil
	}
	if depth > 1 {
		return nil, fmt.Errorf("codec: residual blocks nest deeper than the zoo allows")
	}
	if cnt > maxLayers || cnt > uint64(r.rem()) {
		return nil, fmt.Errorf("codec: implausible layer count %d", cnt)
	}
	var layers []zoo.LayerSpec
	if r.d != nil {
		layers = r.d.nextLayerList(int(cnt))
	} else {
		layers = make([]zoo.LayerSpec, cnt)
	}
	for i := range layers {
		l := &layers[i]
		kind, err := r.getInt()
		if err != nil {
			return nil, err
		}
		l.Kind = zoo.Kind(kind)
		if l.Name, err = r.getString(); err != nil {
			return nil, err
		}
		for _, dst := range []*int{&l.Out, &l.K, &l.Stride, &l.Pad, &l.Window} {
			if *dst, err = r.getInt(); err != nil {
				return nil, err
			}
		}
		if l.Rate, err = r.getF64(); err != nil {
			return nil, err
		}
		if l.Body, err = decodeLayers(r, depth+1); err != nil {
			return nil, err
		}
	}
	return layers, nil
}

// decodeF64s reads a float64 list, bounds-checking the announced length
// against both the cap and the bytes actually present.
func decodeF64s(r *reader, what string) ([]float64, error) {
	cnt, err := r.getUvarint()
	if err != nil {
		return nil, err
	}
	if cnt > maxWorkers || cnt*8 > uint64(r.rem()) {
		return nil, fmt.Errorf("codec: implausible %s count %d", what, cnt)
	}
	if cnt == 0 {
		return nil, nil // canonical: empty lists decode to nil
	}
	vs := make([]float64, cnt)
	for i := range vs {
		if vs[i], err = r.getF64(); err != nil {
			return nil, err
		}
	}
	return vs, nil
}

// banditCount validates a bandit list length against its cap, the remaining
// bytes and the per-entry minimum size.
func (r *reader) banditCount(minEntry int, what string) (int, error) {
	cnt, err := r.getUvarint()
	if err != nil {
		return 0, err
	}
	if cnt > maxBanditItems || cnt*uint64(minEntry) > uint64(r.rem()) {
		return 0, fmt.Errorf("codec: implausible bandit %s count %d", what, cnt)
	}
	return int(cnt), nil
}

// decodeBandit reads one policy state (encodeBandit's inverse).
func decodeBandit(r *reader) (*bandit.State, error) {
	s := &bandit.State{}
	var err error
	if s.Kind, err = r.getString(); err != nil {
		return nil, err
	}
	if s.Round, err = r.getInt(); err != nil {
		return nil, err
	}
	n, err := r.banditCount(16, "region")
	if err != nil {
		return nil, err
	}
	if n > 0 {
		s.Regions = make([]bandit.Region, n)
	}
	for i := range s.Regions {
		if s.Regions[i].Lo, err = r.getF64(); err != nil {
			return nil, err
		}
		if s.Regions[i].Hi, err = r.getF64(); err != nil {
			return nil, err
		}
	}
	if n, err = r.banditCount(17, "pull"); err != nil {
		return nil, err
	}
	if n > 0 {
		s.Pulls = make([]bandit.PullRecord, n)
	}
	for i := range s.Pulls {
		p := &s.Pulls[i]
		if p.Round, err = r.getInt(); err != nil {
			return nil, err
		}
		if p.Ratio, err = r.getF64(); err != nil {
			return nil, err
		}
		if p.Reward, err = r.getF64(); err != nil {
			return nil, err
		}
	}
	if s.Arms, err = decodeF64s(r, "arm"); err != nil {
		return nil, err
	}
	if n, err = r.banditCount(1, "count"); err != nil {
		return nil, err
	}
	if n > 0 {
		s.Counts = make([]int, n)
	}
	for i := range s.Counts {
		if s.Counts[i], err = r.getInt(); err != nil {
			return nil, err
		}
	}
	if s.Sums, err = decodeF64s(r, "sum"); err != nil {
		return nil, err
	}
	if s.Eps, err = r.getF64(); err != nil {
		return nil, err
	}
	if s.Ratio, err = r.getF64(); err != nil {
		return nil, err
	}
	return s, nil
}

// decodeSnapshot reads the durability payload (encodeSnapshot's inverse).
func decodeSnapshot(r *reader) (*Snapshot, error) {
	s := &Snapshot{}
	var err error
	if s.Round, err = r.getInt(); err != nil {
		return nil, err
	}
	if s.Global, err = decodeTensors(r); err != nil {
		return nil, err
	}
	if s.PrevLoss, err = r.getF64(); err != nil {
		return nil, err
	}
	if s.RoundSum, err = r.getF64(); err != nil {
		return nil, err
	}
	if s.PrevTimes, err = decodeF64s(r, "worker-time"); err != nil {
		return nil, err
	}
	if s.PrevComm, err = decodeF64s(r, "worker-time"); err != nil {
		return nil, err
	}
	cnt, err := r.getUvarint()
	if err != nil {
		return nil, err
	}
	// Every worker entry costs at least 12 bytes (slot, two empty strings,
	// ratio, bandit flag).
	if cnt > maxWorkers || cnt*12 > uint64(r.rem()) {
		return nil, fmt.Errorf("codec: implausible worker count %d", cnt)
	}
	s.Workers = make([]WorkerState, cnt)
	for i := range s.Workers {
		w := &s.Workers[i]
		if w.Slot, err = r.getInt(); err != nil {
			return nil, err
		}
		if w.Slot < 0 {
			return nil, fmt.Errorf("codec: negative worker slot %d", w.Slot)
		}
		if w.ID, err = r.getString(); err != nil {
			return nil, err
		}
		if w.Name, err = r.getString(); err != nil {
			return nil, err
		}
		if w.Ratio, err = r.getF64(); err != nil {
			return nil, err
		}
		has, err := r.getByte()
		if err != nil {
			return nil, err
		}
		switch has {
		case 0:
		case 1:
			if w.Bandit, err = decodeBandit(r); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("codec: unknown bandit presence tag %d", has)
		}
	}
	return s, nil
}

// decodePayload parses the payload for e.Kind into e.
func decodePayload(r *reader, e *Envelope) error {
	var err error
	switch e.Kind {
	case KindHello:
		var h *Hello
		if r.d != nil {
			h = &r.d.hello
			*h = Hello{}
		} else {
			h = &Hello{}
		}
		if h.Name, err = r.getString(); err != nil {
			return err
		}
		if h.ID, err = r.getString(); err != nil {
			return err
		}
		e.Hello = h
	case KindAssign:
		var a *Assign
		if r.d != nil {
			a = &r.d.assign
			*a = Assign{}
		} else {
			a = &Assign{}
		}
		if a.Round, err = r.getInt(); err != nil {
			return err
		}
		if a.Desc, err = decodeDesc(r); err != nil {
			return err
		}
		if a.Weights, err = decodeTensors(r); err != nil {
			return err
		}
		if a.Iters, err = r.getInt(); err != nil {
			return err
		}
		if a.ProxMu, err = r.getF32(); err != nil {
			return err
		}
		if a.UploadK, err = r.getF64(); err != nil {
			return err
		}
		if a.Ratio, err = r.getF64(); err != nil {
			return err
		}
		if r.ver >= 2 {
			q, err := r.getByte()
			if err != nil {
				return err
			}
			switch q {
			case 0:
			case 1:
				a.Quantize = true
			default:
				return fmt.Errorf("codec: unknown assign quantize flag %d", q)
			}
		}
		e.Assign = a
	case KindResult:
		var res *Result
		if r.d != nil {
			res = &r.d.result
			*res = Result{}
		} else {
			res = &Result{}
		}
		if res.Round, err = r.getInt(); err != nil {
			return err
		}
		tag, err := r.getByte()
		if err != nil {
			return err
		}
		switch tag {
		case resultNone:
		case resultDelta:
			if res.Delta, err = decodeTensors(r); err != nil {
				return err
			}
		case resultUpdate:
			if res.Update, err = decodeTensors(r); err != nil {
				return err
			}
		default:
			return fmt.Errorf("codec: unknown result payload tag %d", tag)
		}
		if res.TrainLoss, err = r.getF64(); err != nil {
			return err
		}
		if res.CompSeconds, err = r.getF64(); err != nil {
			return err
		}
		e.Result = res
	case KindShutdown:
		var s *Shutdown
		if r.d != nil {
			s = &r.d.shutdown
			*s = Shutdown{}
		} else {
			s = &Shutdown{}
		}
		if s.Reason, err = r.getString(); err != nil {
			return err
		}
		e.Shutdown = s
	case KindSnapshot, KindRoundClose:
		if e.Snapshot, err = decodeSnapshot(r); err != nil {
			return err
		}
	case KindPing, KindPong:
		// No payload.
	}
	return nil
}

// parseHeader validates a frame header and returns the message kind,
// payload length and format version.
func parseHeader(hdr []byte) (Kind, int, byte, error) {
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return 0, 0, 0, fmt.Errorf("codec: bad frame magic %#02x%02x", hdr[0], hdr[1])
	}
	if hdr[2] < minVersion || hdr[2] > version {
		return 0, 0, 0, fmt.Errorf("codec: unsupported format version %d", hdr[2])
	}
	kind := Kind(hdr[3])
	if kind < KindHello || kind > kindMax {
		return 0, 0, 0, fmt.Errorf("codec: unknown message kind %d", kind)
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	if n > MaxFrame {
		return 0, 0, 0, fmt.Errorf("codec: %d-byte payload exceeds the %d-byte frame limit", n, MaxFrame)
	}
	return kind, int(n), hdr[2], nil
}

// decodeFrameBody parses a complete payload into e, rejecting trailing
// bytes.
func decodeFrameBody(r *reader, e *Envelope) error {
	if err := decodePayload(r, e); err != nil {
		return err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("codec: %d trailing bytes after payload", r.rem())
	}
	return nil
}

// ReadFrame reads and decodes one frame from rd, returning the envelope and
// the total bytes consumed. Any malformed input — bad magic, unknown kind,
// truncated or oversized payloads, corrupt tensor encodings — is reported as
// an error; ReadFrame never panics on wire data. Every returned object is
// freshly allocated; a receive loop that fully consumes each envelope before
// the next read should use a Decoder instead.
func ReadFrame(rd io.Reader) (*Envelope, int, error) {
	hb := getBuf(HeaderLen)
	defer putBuf(hb)
	if _, err := io.ReadFull(rd, hb.b); err != nil {
		return nil, 0, err
	}
	kind, n, ver, err := parseHeader(hb.b)
	if err != nil {
		return nil, HeaderLen, err
	}
	f := getBuf(n)
	defer putBuf(f)
	if _, err := io.ReadFull(rd, f.b); err != nil {
		return nil, HeaderLen, err
	}
	total := HeaderLen + n
	e := &Envelope{Kind: kind}
	r := &reader{buf: f.b, ver: ver}
	if err := decodeFrameBody(r, e); err != nil {
		return nil, total, err
	}
	return e, total, nil
}
