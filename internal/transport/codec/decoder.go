package codec

import (
	"io"

	"fedmp/internal/tensor"
	"fedmp/internal/zoo"
)

// maxInternStrings bounds the Decoder's string-intern table so a peer
// sending ever-changing names cannot grow it without limit; past the cap,
// new strings are simply allocated per frame.
const maxInternStrings = 1024

// Decoder reads frames from one stream, recycling a single envelope's worth
// of decode state across calls: the envelope and payload structs, every
// tensor object (shape and data slices reused by capacity), the tensor-list
// and layer-list slices, and an intern table for the strings that repeat
// every round (layer names, the spec name). On the worker's receive loop —
// one assignment per round, same model shapes every time — a steady-state
// frame decodes with no heap allocation, where the one-shot ReadFrame paid
// one per tensor slab and then some (the "41 allocs per decode" the wire
// bench used to record).
//
// The returned envelope and everything reachable from it are valid only
// until the next ReadFrame call on the same Decoder; callers that retain
// envelopes across reads (the server's per-connection readers hand them to
// another goroutine) must keep using the one-shot ReadFrame.
type Decoder struct {
	rd  io.Reader
	hdr [HeaderLen]byte

	env      Envelope
	hello    Hello
	assign   Assign
	result   Result
	shutdown Shutdown
	spec     zoo.Spec

	tensors []*tensor.Tensor
	tensorN int

	tensorLists [][]*tensor.Tensor
	tensorListN int

	layerLists [][]zoo.LayerSpec
	layerListN int

	names map[string]string
}

// NewDecoder returns a Decoder reading frames from rd.
func NewDecoder(rd io.Reader) *Decoder {
	return &Decoder{rd: rd, names: make(map[string]string)}
}

// nextTensor returns the next recycled tensor object, growing the pool on
// first use of each position.
func (d *Decoder) nextTensor() *tensor.Tensor {
	if d.tensorN == len(d.tensors) {
		d.tensors = append(d.tensors, &tensor.Tensor{})
	}
	t := d.tensors[d.tensorN]
	d.tensorN++
	return t
}

// nextTensorList returns the next recycled tensor-list slice, resized to n.
func (d *Decoder) nextTensorList(n int) []*tensor.Tensor {
	if d.tensorListN == len(d.tensorLists) {
		d.tensorLists = append(d.tensorLists, nil)
	}
	l := d.tensorLists[d.tensorListN]
	if cap(l) >= n {
		l = l[:n]
	} else {
		l = make([]*tensor.Tensor, n)
	}
	d.tensorLists[d.tensorListN] = l
	d.tensorListN++
	return l
}

// nextLayerList returns the next recycled layer slice, resized to n. Lists
// are handed out in decode order, so identical frames (the common case: the
// same model spec every round) hit the same capacities every time.
func (d *Decoder) nextLayerList(n int) []zoo.LayerSpec {
	if d.layerListN == len(d.layerLists) {
		d.layerLists = append(d.layerLists, nil)
	}
	l := d.layerLists[d.layerListN]
	if cap(l) >= n {
		l = l[:n]
	} else {
		l = make([]zoo.LayerSpec, n)
	}
	d.layerLists[d.layerListN] = l
	d.layerListN++
	return l
}

// intern returns a string for b, reusing a previously decoded copy when one
// exists (the map lookup on a []byte key does not allocate).
func (d *Decoder) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.names[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(d.names) < maxInternStrings {
		d.names[s] = s
	}
	return s
}

// ReadFrame reads and decodes one frame, recycling the previous frame's
// object graph. Validation is identical to the package-level ReadFrame; only
// the allocation strategy differs. The envelope is invalidated by the next
// call.
func (d *Decoder) ReadFrame() (*Envelope, int, error) {
	if _, err := io.ReadFull(d.rd, d.hdr[:]); err != nil {
		return nil, 0, err
	}
	kind, n, ver, err := parseHeader(d.hdr[:])
	if err != nil {
		return nil, HeaderLen, err
	}
	f := getBuf(n)
	defer putBuf(f)
	if _, err := io.ReadFull(d.rd, f.b); err != nil {
		return nil, HeaderLen, err
	}
	total := HeaderLen + n
	d.tensorN, d.tensorListN, d.layerListN = 0, 0, 0
	e := &d.env
	*e = Envelope{Kind: kind}
	r := &reader{buf: f.b, ver: ver, d: d}
	if err := decodeFrameBody(r, e); err != nil {
		return nil, total, err
	}
	return e, total, nil
}
