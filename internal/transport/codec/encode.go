package codec

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fedmp/internal/bandit"
	"fedmp/internal/prune"
	"fedmp/internal/tensor"
	"fedmp/internal/zoo"
)

// Tensor payload modes. The int8 modes (format version 2) are lossy: the
// decoder reconstructs code·scale, so they are only ever chosen when the
// envelope opted in via Envelope.Quantize.
const (
	modeDense        byte = 0 // raw little-endian float32 slab
	modeSparse       byte = 1 // nonzero count, presence bitmask, surviving values
	modeQuant8       byte = 2 // float32 scale, one int8 code per element
	modeQuantSparse8 byte = 3 // code count, scale, presence bitmask, nonzero codes
)

// writer fills a pre-sized frame buffer. The buffer's length comes from the
// size model, so every put is a plain bounds-checked store — no growth, no
// appends; encodeFrame asserts the final offset against the prediction.
type writer struct {
	buf []byte
	off int
}

func (w *writer) putByte(v byte) {
	w.buf[w.off] = v
	w.off++
}

func (w *writer) putU32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[w.off:], v)
	w.off += 4
}

func (w *writer) putUvarint(v uint64) {
	w.off += binary.PutUvarint(w.buf[w.off:], v)
}

func (w *writer) putSvarint(v int64) {
	w.off += binary.PutVarint(w.buf[w.off:], v)
}

func (w *writer) putF32(v float32) {
	w.putU32(math.Float32bits(v))
}

func (w *writer) putF64(v float64) {
	binary.LittleEndian.PutUint64(w.buf[w.off:], math.Float64bits(v))
	w.off += 8
}

func (w *writer) putString(s string) {
	w.putUvarint(uint64(len(s)))
	w.off += copy(w.buf[w.off:], s)
}

// encodeTensor writes one tensor: rank, dimensions, mode byte, then the
// mode's payload. The mode comes from planTensor — the exact cost choice the
// size model made for this tensor.
func encodeTensor(w *writer, t *tensor.Tensor, quantize bool) {
	n := len(t.Data)
	w.putUvarint(uint64(len(t.Shape)))
	for _, d := range t.Shape {
		w.putUvarint(uint64(d))
	}
	p := planTensor(t.Data, n, quantize)
	w.putByte(p.mode)
	switch p.mode {
	case modeDense:
		putF32s(w.buf[w.off:], t.Data)
		w.off += 4 * n
	case modeSparse:
		w.putUvarint(uint64(p.nnz))
		mask := w.buf[w.off : w.off+(n+7)/8]
		clear(mask)
		w.off += len(mask)
		for i, v := range t.Data {
			if math.Float32bits(v) != 0 {
				mask[i>>3] |= 1 << (i & 7)
				w.putF32(v)
			}
		}
	case modeQuant8:
		w.putF32(p.scale)
		inv := 1 / float64(p.scale)
		dst := w.buf[w.off : w.off+n]
		for i, v := range t.Data {
			dst[i] = byte(prune.QuantizeElem(v, inv))
		}
		w.off += n
	case modeQuantSparse8:
		w.putUvarint(uint64(p.nnz))
		w.putF32(p.scale)
		inv := 1 / float64(p.scale)
		mask := w.buf[w.off : w.off+(n+7)/8]
		clear(mask)
		w.off += len(mask)
		for i, v := range t.Data {
			if q := prune.QuantizeElem(v, inv); q != 0 {
				mask[i>>3] |= 1 << (i & 7)
				w.buf[w.off] = byte(q)
				w.off++
			}
		}
	}
}

func encodeTensors(w *writer, ts []*tensor.Tensor, quantize bool) {
	w.putUvarint(uint64(len(ts)))
	for _, t := range ts {
		encodeTensor(w, t, quantize)
	}
}

// encodeDesc writes a model description. The size model already vetted the
// dynamic type, so the default arm is unreachable on any frame that got this
// far.
func encodeDesc(w *writer, d any) {
	switch v := d.(type) {
	case nil:
		w.putByte(descNil)
	case *zoo.Spec:
		w.putByte(descSpec)
		w.putString(v.Name)
		w.putSvarint(int64(v.InC))
		w.putSvarint(int64(v.InH))
		w.putSvarint(int64(v.InW))
		w.putSvarint(int64(v.Classes))
		encodeLayers(w, v.Layers)
	case zoo.LMConfig:
		w.putByte(descLM)
		w.putSvarint(int64(v.Vocab))
		w.putSvarint(int64(v.Embed))
		w.putSvarint(int64(v.Hidden))
		w.putSvarint(int64(v.SeqLen))
	}
}

func encodeLayers(w *writer, layers []zoo.LayerSpec) {
	w.putUvarint(uint64(len(layers)))
	for i := range layers {
		l := &layers[i]
		w.putSvarint(int64(l.Kind))
		w.putString(l.Name)
		w.putSvarint(int64(l.Out))
		w.putSvarint(int64(l.K))
		w.putSvarint(int64(l.Stride))
		w.putSvarint(int64(l.Pad))
		w.putSvarint(int64(l.Window))
		w.putF64(l.Rate)
		encodeLayers(w, l.Body)
	}
}

// encodeF64s writes a float64 list with a uvarint length prefix.
func encodeF64s(w *writer, vs []float64) {
	w.putUvarint(uint64(len(vs)))
	for _, v := range vs {
		w.putF64(v)
	}
}

// encodeBandit writes one policy state (mirrored by banditSize).
func encodeBandit(w *writer, s *bandit.State) {
	w.putString(s.Kind)
	w.putSvarint(int64(s.Round))
	w.putUvarint(uint64(len(s.Regions)))
	for _, r := range s.Regions {
		w.putF64(r.Lo)
		w.putF64(r.Hi)
	}
	w.putUvarint(uint64(len(s.Pulls)))
	for _, p := range s.Pulls {
		w.putSvarint(int64(p.Round))
		w.putF64(p.Ratio)
		w.putF64(p.Reward)
	}
	encodeF64s(w, s.Arms)
	w.putUvarint(uint64(len(s.Counts)))
	for _, c := range s.Counts {
		w.putSvarint(int64(c))
	}
	encodeF64s(w, s.Sums)
	w.putF64(s.Eps)
	w.putF64(s.Ratio)
}

// encodeSnapshot writes the durability payload shared by KindSnapshot and
// KindRoundClose frames.
func encodeSnapshot(w *writer, s *Snapshot) {
	w.putSvarint(int64(s.Round))
	encodeTensors(w, s.Global, false) // checkpoints are always lossless
	w.putF64(s.PrevLoss)
	w.putF64(s.RoundSum)
	encodeF64s(w, s.PrevTimes)
	encodeF64s(w, s.PrevComm)
	w.putUvarint(uint64(len(s.Workers)))
	for i := range s.Workers {
		ws := &s.Workers[i]
		w.putSvarint(int64(ws.Slot))
		w.putString(ws.ID)
		w.putString(ws.Name)
		w.putF64(ws.Ratio)
		if ws.Bandit == nil {
			w.putByte(0)
			continue
		}
		w.putByte(1)
		encodeBandit(w, ws.Bandit)
	}
}

// encodePayload writes e's payload; the envelope has already passed
// payloadSize's validation.
func encodePayload(w *writer, e *Envelope) {
	switch e.Kind {
	case KindHello:
		w.putString(e.Hello.Name)
		w.putString(e.Hello.ID)
	case KindAssign:
		a := e.Assign
		w.putSvarint(int64(a.Round))
		encodeDesc(w, a.Desc)
		encodeTensors(w, a.Weights, e.Quantize)
		w.putSvarint(int64(a.Iters))
		w.putF32(a.ProxMu)
		w.putF64(a.UploadK)
		w.putF64(a.Ratio)
		if a.Quantize {
			w.putByte(1)
		} else {
			w.putByte(0)
		}
	case KindResult:
		r := e.Result
		w.putSvarint(int64(r.Round))
		switch {
		case r.Delta != nil:
			w.putByte(resultDelta)
			encodeTensors(w, r.Delta, e.Quantize)
		case r.Update != nil:
			w.putByte(resultUpdate)
			encodeTensors(w, r.Update, e.Quantize)
		default:
			w.putByte(resultNone)
		}
		w.putF64(r.TrainLoss)
		w.putF64(r.CompSeconds)
	case KindShutdown:
		w.putString(e.Shutdown.Reason)
	case KindSnapshot, KindRoundClose:
		encodeSnapshot(w, e.Snapshot)
	}
}

// encodeFrame builds e's complete frame in a pooled buffer sized by the
// size model, asserting afterwards that prediction and encoding agree; the
// caller owns the returned buffer and must putBuf it.
func encodeFrame(e *Envelope) (*frameBuf, error) {
	n, err := payloadSize(e)
	if err != nil {
		return nil, err
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("codec: %d-byte payload exceeds the %d-byte frame limit", n, MaxFrame)
	}
	f := getBuf(HeaderLen + n)
	w := &writer{buf: f.b}
	w.putByte(magic0)
	w.putByte(magic1)
	w.putByte(version)
	w.putByte(byte(e.Kind))
	w.putU32(uint32(n))
	encodePayload(w, e)
	if w.off != len(f.b) {
		putBuf(f)
		return nil, fmt.Errorf("codec: internal error: encoded %d of a predicted %d-byte frame", w.off, len(f.b))
	}
	return f, nil
}

// WriteFrame encodes e and writes its frame to wr in a single Write,
// returning the number of bytes written — exactly FrameBytes(e) on success.
func WriteFrame(wr io.Writer, e *Envelope) (int, error) {
	f, err := encodeFrame(e)
	if err != nil {
		return 0, err
	}
	n, err := wr.Write(f.b)
	putBuf(f)
	return n, err
}
