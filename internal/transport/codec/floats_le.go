// On little-endian architectures a float32 slab's in-memory representation
// is already the wire representation, so the hot copy between tensor data
// and frame buffers is a single memmove through an unsafe reinterpretation —
// no per-element byte shuffling, and certainly no reflection.

//go:build 386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm

package codec

import "unsafe"

// putF32s writes src as little-endian float32s into dst, which must hold at
// least 4*len(src) bytes.
//
//fedmp:allocfree
func putF32s(dst []byte, src []float32) {
	if len(src) == 0 {
		return
	}
	copy(dst, unsafe.Slice((*byte)(unsafe.Pointer(&src[0])), len(src)*4))
}

// getF32s fills dst from little-endian float32 bytes in src, which must hold
// at least 4*len(dst) bytes.
//
//fedmp:allocfree
func getF32s(dst []float32, src []byte) {
	if len(dst) == 0 {
		return
	}
	copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), len(dst)*4), src)
}
