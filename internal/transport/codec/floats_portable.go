// Portable float-slab copies for big-endian (or unrecognised) targets: the
// wire format is little-endian regardless of host order, so each element is
// moved through explicit Float32bits byte assembly. Still reflection-free;
// only the single memmove of floats_le.go is lost.

//go:build !(386 || amd64 || arm || arm64 || loong64 || mips64le || mipsle || ppc64le || riscv64 || wasm)

package codec

import (
	"encoding/binary"
	"math"
)

// putF32s writes src as little-endian float32s into dst, which must hold at
// least 4*len(src) bytes.
//
//fedmp:allocfree
func putF32s(dst []byte, src []float32) {
	for i, v := range src {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
}

// getF32s fills dst from little-endian float32 bytes in src, which must hold
// at least 4*len(dst) bytes.
//
//fedmp:allocfree
func getF32s(dst []float32, src []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}
