package codec

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"fedmp/internal/tensor"
)

// FuzzReadFrame throws arbitrary bytes at the decoder. The only contract is
// totality: ReadFrame returns an envelope or an error, it never panics and
// never allocates unboundedly — any frame it does accept must re-encode to
// the same byte count its own size model predicts, and the recycling Decoder
// must agree with the one-shot path bit for bit (checked by comparing their
// re-encodings, which also covers NaN payloads DeepEqual cannot).
func FuzzReadFrame(f *testing.F) {
	rng := rand.New(rand.NewSource(5))
	for _, e := range sampleEnvelopes(rng) {
		var buf bytes.Buffer
		if _, err := WriteFrame(&buf, e); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// The same payload again with quantization on, seeding the int8
		// tensor modes and the assign quantize flag.
		if e.Kind == KindAssign || e.Kind == KindResult {
			q := *e
			q.Quantize = true
			buf.Reset()
			if _, err := WriteFrame(&buf, &q); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
		}
	}
	f.Add([]byte{})
	f.Add([]byte("not a frame at all"))
	f.Add([]byte{magic0, magic1, version, byte(KindPing), 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, _, err := ReadFrame(bytes.NewReader(data))
		e2, _, err2 := NewDecoder(bytes.NewReader(data)).ReadFrame()
		if (err == nil) != (err2 == nil) {
			t.Fatalf("one-shot err %v, Decoder err %v", err, err2)
		}
		if err != nil {
			return
		}
		// Accepted frames must be internally consistent: re-encoding yields
		// a frame the size model agrees with (WriteFrame asserts that), and
		// that frame decodes again.
		var buf, buf2 bytes.Buffer
		if _, err := WriteFrame(&buf, e); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		if _, err := WriteFrame(&buf2, e2); err != nil {
			t.Fatalf("Decoder-decoded frame does not re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("one-shot and Decoder decodes re-encode differently")
		}
		if _, _, err := ReadFrame(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
	})
}

// TestDecodeTruncated feeds every strict prefix of a valid frame to the
// decoder: all of them must fail cleanly (no panic, no success).
func TestDecodeTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i, e := range sampleEnvelopes(rng) {
		var buf bytes.Buffer
		if _, err := WriteFrame(&buf, e); err != nil {
			t.Fatal(err)
		}
		frame := buf.Bytes()
		for cut := 0; cut < len(frame); cut++ {
			if _, _, err := ReadFrame(bytes.NewReader(frame[:cut])); err == nil {
				t.Fatalf("envelope %d truncated at %d/%d decoded successfully", i, cut, len(frame))
			}
		}
	}
}

// TestDecodeCorrupt flips every byte of a tensor-carrying frame one at a
// time; each decode must either fail or produce a structurally valid
// envelope — never panic.
func TestDecodeCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := &Envelope{Kind: KindResult, Result: &Result{
		Round: 2,
		Delta: []*tensor.Tensor{randTensor(rng, 0.8, 9, 5), randTensor(rng, 0, 7)},
	}}
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, e); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for i := range frame {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), frame...)
			mut[i] ^= flip
			got, _, err := ReadFrame(bytes.NewReader(mut))
			if err != nil {
				continue
			}
			if got.Kind == KindResult && got.Result == nil {
				t.Fatalf("byte %d ^ %#x: decoded result frame without payload", i, flip)
			}
		}
	}
}

// TestDecodeOversizedHeader pins that a header announcing a payload over
// MaxFrame is rejected before any read or allocation of that size.
func TestDecodeOversizedHeader(t *testing.T) {
	hdr := []byte{magic0, magic1, version, byte(KindResult), 0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized payload length accepted")
	}
	// And a plausible length with missing bytes is an I/O error, not a hang
	// or panic.
	hdr = []byte{magic0, magic1, version, byte(KindPing), 4, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err != io.EOF && err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated payload returned %v, want an EOF error", err)
	}
}
