package codec

import "sync"

// The codec's scratch buffers come from a size-classed sync.Pool arena
// mirroring tensor.Pool: encode builds each frame in a pooled []byte sized
// by the exact size model and hands it to the socket in one Write; decode
// reads the payload into a pooled []byte and parses out of it. Buffers
// travel inside a recycled *frameBuf wrapper so the steady-state
// Get/Put cycle allocates nothing.

// frameBuf is a pooled byte buffer. b has exactly the requested length; its
// backing array is rounded up to the size class.
type frameBuf struct {
	b     []byte
	class int
}

// bufClasses covers power-of-two size classes from 2^bufMinShift up to
// 2^(bufMinShift+bufClasses-1) bytes (512 B .. 256 MiB ≥ MaxFrame).
// Requests above the largest class are allocated directly and not recycled.
const (
	bufMinShift = 9
	bufClasses  = 20
)

var bufPool [bufClasses]sync.Pool

// bufClassFor returns the smallest size class holding n bytes, or -1 when n
// exceeds the largest class.
func bufClassFor(n int) int {
	size := 1 << bufMinShift
	for c := 0; c < bufClasses; c++ {
		if n <= size {
			return c
		}
		size <<= 1
	}
	return -1
}

// getBuf returns a scratch buffer whose b slice has length n. Contents are
// unspecified (buffers are not cleared on reuse).
func getBuf(n int) *frameBuf {
	c := bufClassFor(n)
	if c < 0 {
		return &frameBuf{b: make([]byte, n), class: -1}
	}
	if v := bufPool[c].Get(); v != nil {
		f := v.(*frameBuf)
		f.b = f.b[:n]
		return f
	}
	return &frameBuf{b: make([]byte, n, 1<<(bufMinShift+c)), class: c}
}

// putBuf returns a buffer to its class; the caller must not retain f.b.
func putBuf(f *frameBuf) {
	if f.class < 0 {
		return
	}
	f.b = f.b[:cap(f.b)]
	bufPool[f.class].Put(f)
}
