package codec

import (
	"fedmp/internal/prune"
	"fedmp/internal/tensor"
)

// Dequantized returns the tensor values a Quantize-enabled frame delivers
// for ts: every tensor the size model would ship in an int8 mode comes back
// as a fresh dequantized reconstruction (code·scale, exactly what the
// decoder computes), and every tensor the plan keeps in float32 aliases the
// input unchanged. The simulation engine mirrors the wire runtime's lossy
// round trip with it, so both runtimes see bit-identical post-transfer
// values without ever framing a byte. The inputs are never modified;
// callers must not mutate aliased outputs.
func Dequantized(ts []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = dequantized(t)
	}
	return out
}

// dequantized reconstructs one tensor through the encoder's own plan. The
// plan, scale and per-element codes are computed by the same helpers the
// encoder and size model share, so the reconstruction matches a real
// encode/decode round trip bit for bit (pinned by TestDequantizedMatchesWire).
func dequantized(t *tensor.Tensor) *tensor.Tensor {
	p := planTensor(t.Data, len(t.Data), true)
	if p.mode != modeQuant8 && p.mode != modeQuantSparse8 {
		return t
	}
	q := tensor.New(t.Shape...)
	inv := 1 / float64(p.scale)
	for i, v := range t.Data {
		q.Data[i] = float32(prune.QuantizeElem(v, inv)) * p.scale
	}
	return q
}
