package codec

import (
	"fmt"
	"math"

	"fedmp/internal/bandit"
	"fedmp/internal/prune"
	"fedmp/internal/tensor"
	"fedmp/internal/zoo"
)

// This file is the codec's size model: FrameBytes predicts, to the byte,
// what WriteFrame will emit for an envelope. The simulation engine prices
// communication with FrameBytes while the TCP runtime measures real frames,
// so the two runtimes charge identical traffic for identical messages; the
// encoder asserts the prediction after every frame it builds (encode.go),
// and codec tests pin the equality. Every helper here has an encoding twin
// in encode.go — change them in pairs.

// uvarintLen returns the encoded size of v as a binary.PutUvarint varint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// svarintLen returns the encoded size of v as a zig-zag binary.PutVarint
// varint.
func svarintLen(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return uvarintLen(uv)
}

// stringLen returns the encoded size of s (uvarint length prefix + bytes).
func stringLen(s string) int {
	return uvarintLen(uint64(len(s))) + len(s)
}

// nonzeroCount counts the elements of vals whose bit pattern is not the
// all-zero word. Comparing bit patterns instead of values keeps the sparse
// mode bit-exact: negative zero and NaN payloads survive a round trip, and
// no float comparison is involved.
//
//fedmp:allocfree
func nonzeroCount(vals []float32) int {
	n := 0
	for _, v := range vals {
		if math.Float32bits(v) != 0 {
			n++
		}
	}
	return n
}

// tensorSparseSize returns the sparse-mode payload size for a tensor of n
// elements with nnz nonzeros: the nonzero count, a one-bit-per-element
// presence mask and the surviving values.
func tensorSparseSize(n, nnz int) int {
	return uvarintLen(uint64(nnz)) + (n+7)/8 + 4*nnz
}

// tensorQuantSparseSize returns the quantized-sparse payload size for n
// elements with nnz nonzero codes: the code count, the float32 scale, the
// presence mask and one signed byte per surviving code.
func tensorQuantSparseSize(n, nnz int) int {
	return uvarintLen(uint64(nnz)) + 4 + (n+7)/8 + nnz
}

// quantNonzeroCount counts the elements whose quantized code is nonzero —
// the population the quantized-sparse mask marks. It must agree element for
// element with the codes the encoder emits, so both call prune.QuantizeElem.
//
//fedmp:allocfree
func quantNonzeroCount(vals []float32, inv float64) int {
	n := 0
	for _, v := range vals {
		if prune.QuantizeElem(v, inv) != 0 {
			n++
		}
	}
	return n
}

// tensorPlan is the per-tensor encoding decision shared by the size model
// and the encoder: the mode, the sparse-mode element count, the quantization
// scale, and the payload size after the mode byte. Deciding once, here, is
// what keeps FrameBytes byte-exact against WriteFrame with four modes in
// play.
type tensorPlan struct {
	mode  byte
	nnz   int
	scale float32
	size  int
}

// planTensor picks the cheapest encoding for n elements. The float32 modes
// are always candidates; the lossy int8 modes join only when the envelope
// asked for quantization and the tensor is quantizable — every element
// finite and the symmetric scale nonzero — and win only when strictly
// cheaper, so a tie keeps full precision.
func planTensor(data []float32, n int, quantize bool) tensorPlan {
	p := tensorPlan{mode: modeDense, size: 4 * n}
	if nnz := nonzeroCount(data); tensorSparseSize(n, nnz) < p.size {
		p = tensorPlan{mode: modeSparse, nnz: nnz, size: tensorSparseSize(n, nnz)}
	}
	if !quantize {
		return p
	}
	scale, finite := prune.SymmetricScale(data)
	if !finite || scale == 0 {
		return p
	}
	if s := 4 + n; s < p.size {
		p = tensorPlan{mode: modeQuant8, scale: scale, size: s}
	}
	qnnz := quantNonzeroCount(data, 1/float64(scale))
	if s := tensorQuantSparseSize(n, qnnz); s < p.size {
		p = tensorPlan{mode: modeQuantSparse8, nnz: qnnz, scale: scale, size: s}
	}
	return p
}

// tensorWireSize returns the encoded size of one tensor, choosing the mode
// exactly as the encoder does, and validates everything the encoder relies
// on.
func tensorWireSize(t *tensor.Tensor, quantize bool) (int, error) {
	if t == nil {
		return 0, fmt.Errorf("codec: nil tensor in payload")
	}
	if len(t.Shape) > maxRank {
		return 0, fmt.Errorf("codec: tensor rank %d exceeds %d", len(t.Shape), maxRank)
	}
	n := 1
	size := uvarintLen(uint64(len(t.Shape)))
	for _, d := range t.Shape {
		if d < 0 {
			return 0, fmt.Errorf("codec: negative dimension %d in shape %v", d, t.Shape)
		}
		size += uvarintLen(uint64(d))
		n *= d
	}
	if n != len(t.Data) {
		return 0, fmt.Errorf("codec: tensor shape %v does not match %d data elements", t.Shape, len(t.Data))
	}
	if n > maxElems {
		return 0, fmt.Errorf("codec: tensor with %d elements exceeds %d", n, maxElems)
	}
	size++ // mode byte
	return size + planTensor(t.Data, n, quantize).size, nil
}

// tensorsSize returns the encoded size of a tensor list.
func tensorsSize(ts []*tensor.Tensor, quantize bool) (int, error) {
	if len(ts) > maxTensors {
		return 0, fmt.Errorf("codec: %d tensors exceed %d", len(ts), maxTensors)
	}
	size := uvarintLen(uint64(len(ts)))
	for _, t := range ts {
		n, err := tensorWireSize(t, quantize)
		if err != nil {
			return 0, err
		}
		size += n
	}
	return size, nil
}

// descSize returns the encoded size of a model description (tag byte plus
// the description itself).
func descSize(d any) (int, error) {
	switch v := d.(type) {
	case nil:
		return 1, nil
	case *zoo.Spec:
		if v == nil {
			return 0, fmt.Errorf("codec: nil *zoo.Spec description")
		}
		n, err := specSize(v)
		if err != nil {
			return 0, err
		}
		return 1 + n, nil
	case zoo.LMConfig:
		return 1 + svarintLen(int64(v.Vocab)) + svarintLen(int64(v.Embed)) +
			svarintLen(int64(v.Hidden)) + svarintLen(int64(v.SeqLen)), nil
	default:
		return 0, fmt.Errorf("codec: unsupported description type %T", d)
	}
}

// specSize returns the encoded size of an architecture spec.
func specSize(s *zoo.Spec) (int, error) {
	n, err := layersSize(s.Layers, 0)
	if err != nil {
		return 0, err
	}
	return stringLen(s.Name) +
		svarintLen(int64(s.InC)) + svarintLen(int64(s.InH)) + svarintLen(int64(s.InW)) +
		svarintLen(int64(s.Classes)) + n, nil
}

// layersSize returns the encoded size of a layer list; depth tracks residual
// nesting (zoo.Walk forbids residuals inside residuals, so one level of
// Body is the limit).
func layersSize(layers []zoo.LayerSpec, depth int) (int, error) {
	if len(layers) > 0 && depth > 1 {
		return 0, fmt.Errorf("codec: residual blocks nest deeper than the zoo allows")
	}
	if len(layers) > maxLayers {
		return 0, fmt.Errorf("codec: %d layers exceed %d", len(layers), maxLayers)
	}
	size := uvarintLen(uint64(len(layers)))
	for i := range layers {
		l := &layers[i]
		body, err := layersSize(l.Body, depth+1)
		if err != nil {
			return 0, err
		}
		size += svarintLen(int64(l.Kind)) + stringLen(l.Name) +
			svarintLen(int64(l.Out)) + svarintLen(int64(l.K)) +
			svarintLen(int64(l.Stride)) + svarintLen(int64(l.Pad)) +
			svarintLen(int64(l.Window)) + 8 + body
	}
	return size, nil
}

// f64sSize returns the encoded size of a float64 list, validating its
// length cap.
func f64sSize(vs []float64, what string) (int, error) {
	if len(vs) > maxWorkers {
		return 0, fmt.Errorf("codec: %d %s entries exceed %d", len(vs), what, maxWorkers)
	}
	return uvarintLen(uint64(len(vs))) + 8*len(vs), nil
}

// banditSize returns the encoded size of one policy state (encodeBandit's
// twin).
func banditSize(s *bandit.State) (int, error) {
	if len(s.Regions) > maxBanditItems || len(s.Pulls) > maxBanditItems ||
		len(s.Arms) > maxBanditItems || len(s.Counts) > maxBanditItems ||
		len(s.Sums) > maxBanditItems {
		return 0, fmt.Errorf("codec: bandit state lists exceed %d entries", maxBanditItems)
	}
	size := stringLen(s.Kind) + svarintLen(int64(s.Round))
	size += uvarintLen(uint64(len(s.Regions))) + 16*len(s.Regions)
	size += uvarintLen(uint64(len(s.Pulls)))
	for _, p := range s.Pulls {
		size += svarintLen(int64(p.Round)) + 16
	}
	size += uvarintLen(uint64(len(s.Arms))) + 8*len(s.Arms)
	size += uvarintLen(uint64(len(s.Counts)))
	for _, c := range s.Counts {
		size += svarintLen(int64(c))
	}
	size += uvarintLen(uint64(len(s.Sums))) + 8*len(s.Sums)
	return size + 8 + 8, nil // Eps, Ratio
}

// snapshotSize returns the encoded size of a durability payload
// (encodeSnapshot's twin). Snapshots never quantize: a checkpoint must
// restore the exact global model.
func snapshotSize(s *Snapshot) (int, error) {
	global, err := tensorsSize(s.Global, false)
	if err != nil {
		return 0, err
	}
	size := svarintLen(int64(s.Round)) + global + 8 + 8 // PrevLoss, RoundSum
	for _, vs := range [][]float64{s.PrevTimes, s.PrevComm} {
		n, err := f64sSize(vs, "worker-time")
		if err != nil {
			return 0, err
		}
		size += n
	}
	if len(s.Workers) > maxWorkers {
		return 0, fmt.Errorf("codec: %d worker entries exceed %d", len(s.Workers), maxWorkers)
	}
	size += uvarintLen(uint64(len(s.Workers)))
	for i := range s.Workers {
		w := &s.Workers[i]
		size += svarintLen(int64(w.Slot)) + stringLen(w.ID) + stringLen(w.Name) + 8 + 1
		if w.Bandit != nil {
			n, err := banditSize(w.Bandit)
			if err != nil {
				return 0, err
			}
			size += n
		}
	}
	return size, nil
}

// payloadSize returns the encoded payload size for an envelope.
func payloadSize(e *Envelope) (int, error) {
	if err := checkKind(e); err != nil {
		return 0, err
	}
	switch e.Kind {
	case KindHello:
		return stringLen(e.Hello.Name) + stringLen(e.Hello.ID), nil
	case KindAssign:
		a := e.Assign
		desc, err := descSize(a.Desc)
		if err != nil {
			return 0, err
		}
		ws, err := tensorsSize(a.Weights, e.Quantize)
		if err != nil {
			return 0, err
		}
		return svarintLen(int64(a.Round)) + desc + ws +
			svarintLen(int64(a.Iters)) + 4 + 8 + 8 + 1, nil // +1: Quantize flag
	case KindResult:
		r := e.Result
		size := svarintLen(int64(r.Round)) + 1 + 8 + 8
		var payload []*tensor.Tensor
		switch {
		case r.Delta != nil:
			payload = r.Delta
		case r.Update != nil:
			payload = r.Update
		default:
			return size, nil
		}
		ts, err := tensorsSize(payload, e.Quantize)
		if err != nil {
			return 0, err
		}
		return size + ts, nil
	case KindShutdown:
		return stringLen(e.Shutdown.Reason), nil
	case KindSnapshot, KindRoundClose:
		return snapshotSize(e.Snapshot)
	default: // KindPing, KindPong — checkKind rejected everything else.
		return 0, nil
	}
}

// FrameBytes returns the exact wire size of e's frame — header plus payload
// — without encoding it. It is the size model the simulation engine charges
// communication with; WriteFrame emits exactly this many bytes.
func FrameBytes(e *Envelope) (int64, error) {
	n, err := payloadSize(e)
	if err != nil {
		return 0, err
	}
	if n > MaxFrame {
		return 0, fmt.Errorf("codec: %d-byte payload exceeds the %d-byte frame limit", n, MaxFrame)
	}
	return int64(HeaderLen + n), nil
}
