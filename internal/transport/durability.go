package transport

import (
	"errors"
	"fmt"

	"fedmp/internal/bandit"
	"fedmp/internal/core"
	"fedmp/internal/tensor"
	"fedmp/internal/transport/codec"
)

// ErrAborted reports that Serve stopped because its Abort channel fired
// before the schedule finished. Every round completed before the abort is
// durable when a checkpoint directory is configured; a restarted server
// resumes from the round after the last one it closed.
var ErrAborted = errors.New("transport: server aborted")

// preseed restores the identity table from a recovered snapshot so workers
// reconnecting after a server restart land back in their old slots (and keep
// their bandit state, ratio history and per-slot timing). Must run before
// the accept loop starts.
func (r *registry) preseed(ws []codec.WorkerState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range ws {
		if w.Slot < 0 || w.Slot >= r.n {
			return fmt.Errorf("transport: checkpoint worker slot %d outside 0..%d (was the server restarted with fewer workers?)",
				w.Slot, r.n-1)
		}
		if w.ID != "" {
			r.slots[w.ID] = w.Slot
		}
		r.names[w.Slot] = w.Name
		if w.Slot+1 > r.next {
			r.next = w.Slot + 1
		}
	}
	return nil
}

// workerTable snapshots the identity table: one entry per slot that has ever
// been assigned, carrying the stable ID (empty when the worker never
// presented one) and display name. Ratio and bandit state are filled in by
// the caller, which owns that state.
func (r *registry) workerTable() []codec.WorkerState {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, r.n)
	for id, slot := range r.slots {
		ids[slot] = id
	}
	out := make([]codec.WorkerState, 0, r.next)
	for slot := 0; slot < r.next; slot++ {
		out = append(out, codec.WorkerState{Slot: slot, ID: ids[slot], Name: r.names[slot]})
	}
	return out
}

// kill tears down every connection without the shutdown handshake,
// simulating a crash: workers see a broken session instead of an orderly
// goodbye and enter their reconnect loops, which is exactly the client
// behaviour a restarted server relies on.
func (r *registry) kill() {
	r.closeDone()
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, c := range r.conns {
		if c == nil {
			continue
		}
		closeLogged(c, r.logf, "killed connection")
		r.conns[i] = nil
		r.state[i] = stateDown
	}
}

// checkResume validates a recovered snapshot against this run's
// configuration before any of it is spliced into live state: the round must
// leave budget to resume into, the model architecture must match tensor for
// tensor, and the per-worker slices must match the configured worker count.
func checkResume(snap *codec.Snapshot, workers, rounds int, global []*tensor.Tensor) error {
	if snap.Round < 1 {
		return fmt.Errorf("transport: checkpoint at round %d, want >= 1", snap.Round)
	}
	if snap.Round >= rounds {
		return fmt.Errorf("transport: checkpoint already at round %d of a %d-round budget; nothing to resume", snap.Round, rounds)
	}
	if len(snap.Global) != len(global) {
		return fmt.Errorf("transport: checkpoint has %d global tensors, model has %d", len(snap.Global), len(global))
	}
	for i := range global {
		if !tensor.SameShape(snap.Global[i], global[i]) {
			return fmt.Errorf("transport: checkpoint tensor %d has shape %v, model wants %v",
				i, snap.Global[i].Shape, global[i].Shape)
		}
	}
	if len(snap.PrevTimes) != workers || len(snap.PrevComm) != workers {
		return fmt.Errorf("transport: checkpoint tracks %d/%d workers, server is configured for %d",
			len(snap.PrevTimes), len(snap.PrevComm), workers)
	}
	return nil
}

// resumeBandits splices the snapshot's per-worker bandit state back into the
// strategy. A snapshot without bandit state is a no-op; bandit state aimed
// at a strategy that keeps none is a configuration mismatch.
func resumeBandits(snap *codec.Snapshot, workers int, strategy core.Strategy) error {
	sts := make([]*bandit.State, workers)
	found := false
	for _, w := range snap.Workers {
		if w.Bandit == nil {
			continue
		}
		if w.Slot < 0 || w.Slot >= workers {
			return fmt.Errorf("transport: checkpoint bandit for slot %d outside 0..%d", w.Slot, workers-1)
		}
		sts[w.Slot] = w.Bandit
		found = true
	}
	if !found {
		return nil
	}
	bp, ok := strategy.(core.BanditPersistent)
	if !ok {
		return fmt.Errorf("transport: checkpoint carries bandit state but the configured strategy keeps none")
	}
	return bp.RestoreBandits(sts)
}

// exportBandits returns the strategy's per-slot bandit state, or nil when
// the strategy keeps none.
func exportBandits(strategy core.Strategy) []*bandit.State {
	if bp, ok := strategy.(core.BanditPersistent); ok {
		return bp.ExportBandits()
	}
	return nil
}
