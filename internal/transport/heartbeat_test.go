package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// deadConn is a stub net.Conn modelling a peer whose network died: writes
// fail immediately, reads block until the connection is closed — exactly
// the state a suspect worker's TCP session is in when its host vanishes.
type deadConn struct {
	closed chan struct{}
	once   sync.Once
}

func newDeadConn() *deadConn { return &deadConn{closed: make(chan struct{})} }

func (d *deadConn) Read(b []byte) (int, error) {
	<-d.closed
	return 0, net.ErrClosed
}

func (d *deadConn) Write(b []byte) (int, error) { return 0, errors.New("broken pipe") }

func (d *deadConn) Close() error {
	d.once.Do(func() { close(d.closed) })
	return nil
}

func (d *deadConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (d *deadConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (d *deadConn) SetDeadline(t time.Time) error      { return nil }
func (d *deadConn) SetReadDeadline(t time.Time) error  { return nil }
func (d *deadConn) SetWriteDeadline(t time.Time) error { return nil }

// TestPingSuspectsSeversDeadConnection pins the heartbeat teardown path: a
// suspect whose heartbeat send fails must have its connection severed so
// the blocked per-connection reader unblocks and drops the slot now —
// previously the failure was only logged and the dead suspect stayed
// "connected" until the 24h idle timeout expired.
func TestPingSuspectsSeversDeadConnection(t *testing.T) {
	reg := newRegistry(1, func(string, ...any) {})
	defer reg.closeDone()
	reg.admit(newConn(newDeadConn()), &helloMsg{Name: "w0", ID: "w0"})
	if got := reg.connected(); got != 1 {
		t.Fatalf("connected() = %d after admit, want 1", got)
	}
	reg.markSuspect(0)
	if got := reg.suspects(); len(got) != 1 {
		t.Fatalf("suspects() = %v, want [0]", got)
	}

	reg.pingSuspects()

	// The failed send must close the captured connection, unblocking the
	// reader goroutine admit spawned; its recv error runs the drop path and
	// pushes a disconnect event (env == nil).
	select {
	case ev := <-reg.events:
		if ev.env != nil {
			t.Fatalf("expected a disconnect event, got a frame from worker %d", ev.worker)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader never unblocked: heartbeat failure did not sever the dead connection")
	}
	if got := reg.connected(); got != 0 {
		t.Fatalf("connected() = %d after sever, want 0", got)
	}
	if got := reg.suspects(); len(got) != 0 {
		t.Fatalf("suspects() = %v after sever, want none", got)
	}
}

// TestPingSuspectsLeavesHealthySuspects pins the other half: a suspect
// whose transport still accepts the ping frame is left connected — only the
// answering worker (or the idle timeout) decides its fate.
func TestPingSuspectsLeavesHealthySuspects(t *testing.T) {
	reg := newRegistry(1, func(string, ...any) {})
	defer reg.closeDone()
	serverRaw, workerRaw := net.Pipe()
	defer workerRaw.Close()
	reg.admit(newConn(serverRaw), &helloMsg{Name: "w0", ID: "w0"})
	reg.markSuspect(0)

	// Drain the worker side so the synchronous pipe write completes.
	go func() {
		buf := make([]byte, 256)
		for {
			if _, err := workerRaw.Read(buf); err != nil {
				return
			}
		}
	}()
	reg.pingSuspects()

	if got := reg.connected(); got != 1 {
		t.Fatalf("connected() = %d after successful ping, want 1", got)
	}
	if got := reg.suspects(); len(got) != 1 {
		t.Fatalf("suspects() = %v after successful ping, want [0]", got)
	}
}
