package transport

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fedmp/internal/core"
	"fedmp/internal/data"
	"fedmp/internal/nn"
)

// reservePort grabs an ephemeral port deterministically.
func reservePort(t *testing.T) string {
	t.Helper()
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()
	return addr
}

// deadAfterWorker behaves like a normal worker for a number of rounds, then
// closes its connection mid-training.
func deadAfterWorker(t *testing.T, fam *core.ImageFamily, addr string, src core.Source, id string, dieAfter int) {
	t.Helper()
	c, err := dial(addr, newBackoff(0, 0, 1), 5)
	if err != nil {
		t.Errorf("flaky worker dial: %v", err)
		return
	}
	defer c.close()
	if _, err := c.send(&envelope{Kind: kindHello, Hello: &helloMsg{Name: "flaky", ID: id}}); err != nil {
		t.Errorf("flaky hello: %v", err)
		return
	}
	for served := 0; ; {
		e, _, err := c.recv(30 * time.Second)
		if err != nil || e.Kind == kindShutdown {
			return
		}
		if e.Kind == kindPing {
			if _, err := c.send(&envelope{Kind: kindPong}); err != nil {
				return
			}
			continue
		}
		if e.Kind != kindAssign {
			return
		}
		if served >= dieAfter {
			return // die without answering
		}
		res, err := trainAssignment(fam, src, e.Assign, WorkerConfig{LR: 0.05, Momentum: 0.9})
		if err != nil {
			t.Errorf("flaky train: %v", err)
			return
		}
		if _, err := c.send(&envelope{Kind: kindResult, Result: res}); err != nil {
			return
		}
		served++
	}
}

// slowWorker answers every assignment correctly but only after a fixed
// delay, standing in for a hard straggler (or, with a small delay, a worker
// whose rounds take long enough for tests to interleave events).
func slowWorker(t *testing.T, fam *core.ImageFamily, addr string, src core.Source, id string, delay time.Duration) {
	t.Helper()
	c, err := dial(addr, newBackoff(0, 0, 2), 5)
	if err != nil {
		t.Errorf("slow worker dial: %v", err)
		return
	}
	defer c.close()
	if _, err := c.send(&envelope{Kind: kindHello, Hello: &helloMsg{Name: id, ID: id}}); err != nil {
		t.Errorf("slow hello: %v", err)
		return
	}
	for {
		e, _, err := c.recv(30 * time.Second)
		if err != nil || e.Kind == kindShutdown {
			return
		}
		switch e.Kind {
		case kindPing:
			if _, err := c.send(&envelope{Kind: kindPong}); err != nil {
				return
			}
		case kindAssign:
			time.Sleep(delay)
			res, err := trainAssignment(fam, src, e.Assign, WorkerConfig{LR: 0.05, Momentum: 0.9})
			if err != nil {
				t.Errorf("slow train: %v", err)
				return
			}
			if _, err := c.send(&envelope{Kind: kindResult, Result: res}); err != nil {
				return
			}
		default:
			return
		}
	}
}

// TestServerSurvivesWorkerDeath runs three workers, kills one after two
// rounds, and verifies the server completes the full schedule with the
// remaining two.
func TestServerSurvivesWorkerDeath(t *testing.T) {
	fam := testFamily()
	addr := reservePort(t)

	const rounds = 5
	part := data.PartitionIID(fam.DS, 3, rand.New(rand.NewSource(1)))
	for i := 0; i < 2; i++ {
		src := data.NewLoader(fam.DS, part[i], 4, rand.New(rand.NewSource(int64(i)+50)))
		go func(src core.Source) {
			_ = RunWorker(fam, src, WorkerConfig{Addr: addr, Name: "steady"})
		}(src)
	}
	flakySrc := data.NewLoader(fam.DS, part[2], 4, rand.New(rand.NewSource(60)))
	go deadAfterWorker(t, fam, addr, flakySrc, "", 2)

	res, err := Serve(fam, ServerConfig{
		Addr:           addr,
		Workers:        3,
		Rounds:         rounds,
		RoundTimeout:   10 * time.Second,
		StragglerGrace: 500 * time.Millisecond,
		Core: core.Config{
			Strategy:   core.StrategySynFL,
			Rounds:     rounds,
			LocalIters: 1,
			BatchSize:  4,
			EvalLimit:  40,
			Seed:       4,
		},
	})
	if err != nil {
		t.Fatalf("server did not survive a worker death: %v", err)
	}
	if res.Rounds != rounds {
		t.Errorf("completed %d rounds, want %d", res.Rounds, rounds)
	}
}

// TestWorkerRejoinAfterKill kills a worker mid-training, restarts it with
// the same stable identity, and verifies the server completes every round
// with the worker re-contributing after its rejoin (no permanent eviction).
func TestWorkerRejoinAfterKill(t *testing.T) {
	fam := testFamily()
	addr := reservePort(t)

	const rounds = 7
	part := data.PartitionIID(fam.DS, 2, rand.New(rand.NewSource(2)))
	// The steady worker paces rounds at ~100ms so the kill/rejoin below
	// interleaves with training instead of racing a millisecond schedule.
	steadySrc := data.NewLoader(fam.DS, part[0], 4, rand.New(rand.NewSource(70)))
	go slowWorker(t, fam, addr, steadySrc, "steady", 100*time.Millisecond)

	// First incarnation: serves two rounds, then its connection dies; the
	// restart presents the same identity and must re-enter its old slot.
	flakySrc := data.NewLoader(fam.DS, part[1], 4, rand.New(rand.NewSource(71)))
	go func() {
		deadAfterWorker(t, fam, addr, flakySrc, "phoenix", 2)
		_ = RunWorker(fam, flakySrc, WorkerConfig{Addr: addr, Name: "phoenix", ID: "phoenix"})
	}()

	res, err := Serve(fam, ServerConfig{
		Addr:           addr,
		Workers:        2,
		Rounds:         rounds,
		RoundTimeout:   10 * time.Second,
		Quorum:         1,
		StragglerGrace: time.Second,
		Core: core.Config{
			Strategy:   core.StrategySynFL,
			Rounds:     rounds,
			LocalIters: 1,
			BatchSize:  4,
			EvalLimit:  40,
			Seed:       6,
		},
	})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	if res.Rounds != rounds {
		t.Fatalf("completed %d rounds, want %d", res.Rounds, rounds)
	}
	var sawLoss, sawRecovery bool
	for _, st := range res.Stats {
		if st.Participants < 2 {
			sawLoss = true
		}
		if sawLoss && st.Participants == 2 {
			sawRecovery = true
		}
	}
	if !sawLoss {
		t.Error("kill never cost a round any participant")
	}
	if !sawRecovery {
		t.Error("killed worker never re-contributed after rejoin")
	}
}

// TestQuorumRoundFinishesBeforeSlowest verifies quorum-based completion: a
// hard straggler still in flight must not hold the round open past the
// grace period, and must be skipped (suspect) — not evicted — afterwards.
func TestQuorumRoundFinishesBeforeSlowest(t *testing.T) {
	fam := testFamily()
	addr := reservePort(t)

	const rounds = 3
	const slowDelay = 2 * time.Second
	part := data.PartitionIID(fam.DS, 3, rand.New(rand.NewSource(3)))
	for i := 0; i < 2; i++ {
		src := data.NewLoader(fam.DS, part[i], 4, rand.New(rand.NewSource(int64(i)+80)))
		go func(i int, src core.Source) {
			_ = RunWorker(fam, src, WorkerConfig{Addr: addr, Name: "fast"})
		}(i, src)
	}
	slowSrc := data.NewLoader(fam.DS, part[2], 4, rand.New(rand.NewSource(90)))
	go slowWorker(t, fam, addr, slowSrc, "slow", slowDelay)

	start := time.Now()
	res, err := Serve(fam, ServerConfig{
		Addr:           addr,
		Workers:        3,
		Rounds:         rounds,
		RoundTimeout:   15 * time.Second,
		Quorum:         2,
		StragglerGrace: 250 * time.Millisecond,
		Core: core.Config{
			Strategy:   core.StrategySynFL,
			Rounds:     rounds,
			LocalIters: 1,
			BatchSize:  4,
			EvalLimit:  40,
			Seed:       8,
		},
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	if res.Rounds != rounds {
		t.Errorf("completed %d rounds, want %d", res.Rounds, rounds)
	}
	// Waiting out the straggler every round would take ≥ rounds×slowDelay.
	if elapsed >= rounds*slowDelay {
		t.Errorf("rounds took %v; quorum should finish before the slowest worker (%v per round)", elapsed, slowDelay)
	}
	var droppedTotal int
	for _, st := range res.Stats {
		if st.Participants < 2 {
			t.Errorf("round %d aggregated only %d results, quorum is 2", st.Round, st.Participants)
		}
		droppedTotal += st.Dropped
	}
	if droppedTotal == 0 {
		t.Error("straggler was never recorded as dropped")
	}
}

// TestSilentClientDoesNotStallStartup connects a client that never sends a
// hello; the real worker arriving later must still be admitted and training
// must complete.
func TestSilentClientDoesNotStallStartup(t *testing.T) {
	fam := testFamily()
	addr := reservePort(t)

	resCh := make(chan *core.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := Serve(fam, ServerConfig{
			Addr: addr, Workers: 1, Rounds: 1,
			RoundTimeout:  20 * time.Second,
			HelloTimeout:  400 * time.Millisecond,
			AcceptTimeout: 15 * time.Second,
			Core:          core.Config{Strategy: core.StrategySynFL, Rounds: 1, LocalIters: 1, BatchSize: 2, EvalLimit: 40, Seed: 2},
		})
		resCh <- res
		errCh <- err
	}()

	// The silent client connects first and just sits there.
	time.Sleep(100 * time.Millisecond)
	silent, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	src := data.NewLoader(fam.DS, []int{0, 1, 2, 3, 4, 5}, 2, rand.New(rand.NewSource(3)))
	go func() {
		_ = RunWorker(fam, src, WorkerConfig{Addr: addr, Name: "legit"})
	}()
	res := <-resCh
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
}

// TestAcceptTimeoutBoundsStartup verifies the server gives up promptly when
// too few workers ever join.
func TestAcceptTimeoutBoundsStartup(t *testing.T) {
	fam := testFamily()
	addr := reservePort(t)
	start := time.Now()
	_, err := Serve(fam, ServerConfig{
		Addr: addr, Workers: 2, Rounds: 1,
		AcceptTimeout: 300 * time.Millisecond,
		Core:          core.Config{Strategy: core.StrategySynFL, Rounds: 1, LocalIters: 1, BatchSize: 2, EvalLimit: 40, Seed: 2},
	})
	if err == nil {
		t.Fatal("server started without its workers")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("accept phase took %v despite a 300ms accept timeout", elapsed)
	}
}

// gatedSource serves a number of batches normally and then blocks until
// release is closed. It pins the training schedule mid-round so the kill in
// TestPSKillRestartRecovery cannot race the server finishing the whole
// schedule first — on fast hardware all six tiny rounds complete between two
// polls of the checkpoint directory.
type gatedSource struct {
	src     core.Source
	free    int
	served  int
	release <-chan struct{}
}

func (g *gatedSource) Next() *nn.Batch {
	g.served++
	if g.served > g.free {
		<-g.release
	}
	return g.src.Next()
}

// TestPSKillRestartRecovery is the durability acceptance test: the
// parameter server is killed mid-schedule without any shutdown handshake,
// then restarted on the same address and checkpoint directory while its
// workers are still alive and backing off. The restarted server must resume
// from the round after the last durable one — never re-running a completed
// round — finish the schedule, and land within tolerance of an
// uninterrupted run (make ci runs this under -race).
func TestPSKillRestartRecovery(t *testing.T) {
	fam := testFamily()
	addr := reservePort(t)
	dir := t.TempDir()

	const rounds = 6
	mkCfg := func(abort <-chan struct{}) ServerConfig {
		return ServerConfig{
			Addr:          addr,
			Workers:       2,
			Rounds:        rounds,
			RoundTimeout:  20 * time.Second,
			CheckpointDir: dir,
			SnapshotEvery: 2,
			Abort:         abort,
			Core: core.Config{
				Strategy:   core.StrategyFedMP,
				Rounds:     rounds,
				LocalIters: 2,
				BatchSize:  4,
				EvalLimit:  80,
				Seed:       5,
			},
		}
	}

	// Same partition, loaders and seed as launch(), so the uninterrupted
	// baseline below trains on identical data. Each worker trains the first
	// two rounds freely and then stalls until released, holding the schedule
	// open for the kill below.
	release := make(chan struct{})
	part := data.PartitionIID(fam.DS, 2, rand.New(rand.NewSource(9)))
	workerErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		src := &gatedSource{
			src:     data.NewLoader(fam.DS, part[i], 4, rand.New(rand.NewSource(int64(i)+100))),
			free:    2 * 2, // two rounds of LocalIters batches
			release: release,
		}
		go func(i int, src core.Source) {
			workerErrs <- RunWorker(fam, src, WorkerConfig{
				Addr:            addr,
				Name:            fmt.Sprintf("w%d", i),
				ID:              fmt.Sprintf("stable-%d", i),
				MaxDialAttempts: 60,
				MaxReconnects:   20,
			})
		}(i, src)
	}

	// First incarnation: run until a round is durable — a WAL record (round
	// 1) or a full snapshot (round 2); the workers stall in round 3 — then
	// abort: connections severed without the shutdown handshake, exactly
	// like a crash.
	abort := make(chan struct{})
	serveErr := make(chan error, 1)
	go func() {
		_, err := Serve(fam, mkCfg(abort))
		serveErr <- err
	}()
	wal := filepath.Join(dir, "wal.log")
	snap := filepath.Join(dir, "snapshot.ckpt")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st, err := os.Stat(wal); err == nil && st.Size() > 0 {
			break
		}
		if _, err := os.Stat(snap); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no round became durable within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(abort)
	if err := <-serveErr; !errors.Is(err, ErrAborted) {
		t.Fatalf("killed server returned %v, want ErrAborted", err)
	}
	// Unblock the stalled round-3 training; the workers' result sends hit
	// the severed connections and they reconnect to the next incarnation.
	close(release)

	// Second incarnation: same address, same checkpoint directory, no
	// abort. The still-running workers reconnect and training resumes.
	res, err := Serve(fam, mkCfg(nil))
	if err != nil {
		t.Fatalf("restarted server: %v", err)
	}
	if res.Rounds != rounds {
		t.Fatalf("restarted server finished at round %d, want %d", res.Rounds, rounds)
	}
	// The restart's baseline eval point is the recovered round; every round
	// it actually runs must come strictly after it.
	resumeRound := res.Points[0].Round
	if resumeRound < 1 {
		t.Fatalf("restart resumed at round %d; the durable round was lost", resumeRound)
	}
	for _, st := range res.Stats {
		if st.Round <= resumeRound {
			t.Errorf("restarted server re-ran round %d (already durable through %d)", st.Round, resumeRound)
		}
	}
	// Orderly finish: both workers get the shutdown handshake and exit nil.
	for i := 0; i < 2; i++ {
		if err := <-workerErrs; err != nil {
			t.Errorf("worker: %v", err)
		}
	}

	// Convergence matches an uninterrupted run of the same schedule. The
	// trajectories diverge at the kill (replayed round, fresh RNG), so exact
	// equality is not expected — but on this easy task both must land in the
	// same place.
	base := launch(t, core.StrategyFedMP, 2, rounds)
	if diff := math.Abs(res.FinalAcc - base.FinalAcc); diff > 0.2 {
		t.Errorf("recovered run final accuracy %v vs uninterrupted %v (diff %v)",
			res.FinalAcc, base.FinalAcc, diff)
	}
}

// TestBackoffBounds pins the jittered delay inside [raw/2, 3·raw/2) and the
// raw schedule to capped exponential doubling.
func TestBackoffBounds(t *testing.T) {
	b := newBackoff(100*time.Millisecond, time.Second, 42)
	wantRaw := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second, time.Second,
	}
	for attempt, raw := range wantRaw {
		if got := b.raw(attempt); got != raw {
			t.Errorf("raw(%d) = %v, want %v", attempt, got, raw)
		}
		for trial := 0; trial < 50; trial++ {
			d := b.delay(attempt)
			if d < raw/2 || d >= raw*3/2 {
				t.Fatalf("delay(%d) = %v outside [%v, %v)", attempt, d, raw/2, raw*3/2)
			}
		}
	}
	// Defaults kick in for zero parameters.
	d := newBackoff(0, 0, 1)
	if d.base != defaultBackoffBase || d.max != defaultBackoffMax {
		t.Errorf("zero-config backoff got base %v max %v", d.base, d.max)
	}
}

// TestLateHelloGetsShutdown pins the late-connection rejection path: a
// worker whose hello loses the race against registry shutdown must receive
// a shutdown frame before the hangup, exactly like the server-full
// rejection, so its session loop exits cleanly instead of treating the
// bare EOF as a transport fault and redialing a dead server.
func TestLateHelloGetsShutdown(t *testing.T) {
	reg := newRegistry(1, func(string, ...any) {})
	reg.closeDone()
	serverRaw, workerRaw := net.Pipe()
	defer workerRaw.Close()
	admitted := make(chan struct{})
	go func() {
		defer close(admitted)
		reg.admit(newConn(serverRaw), &helloMsg{Name: "late", ID: "late"})
	}()
	wc := newConn(workerRaw)
	e, _, err := wc.recv(5 * time.Second)
	if err != nil {
		t.Fatalf("late hello was hung up on without a shutdown frame: %v", err)
	}
	if e.Kind != kindShutdown {
		t.Fatalf("late hello got kind %d, want shutdown", e.Kind)
	}
	if e.Shutdown == nil || e.Shutdown.Reason != "server shutting down" {
		t.Fatalf("shutdown frame carries %+v, want the shutting-down reason", e.Shutdown)
	}
	<-admitted
	if _, _, err := wc.recv(5 * time.Second); err == nil {
		t.Fatal("connection stayed open after the late-hello shutdown frame")
	}
	if got := reg.connected(); got != 0 {
		t.Fatalf("connected() = %d after a late hello, want 0", got)
	}
}
