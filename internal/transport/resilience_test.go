package transport

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"fedmp/internal/core"
	"fedmp/internal/data"
)

// deadAfterWorker behaves like a normal worker for a number of rounds, then
// closes its connection mid-training.
func deadAfterWorker(t *testing.T, fam *core.ImageFamily, addr string, src core.Source, dieAfter int) {
	t.Helper()
	c, err := dial(addr)
	if err != nil {
		t.Errorf("flaky worker dial: %v", err)
		return
	}
	defer c.close()
	if err := c.send(&envelope{Kind: kindHello, Hello: &helloMsg{Name: "flaky"}}); err != nil {
		t.Errorf("flaky hello: %v", err)
		return
	}
	for served := 0; ; served++ {
		e, err := c.recv(30 * time.Second)
		if err != nil || e.Kind != kindAssign {
			return // shutdown or our own closed conn
		}
		if served >= dieAfter {
			return // die without answering
		}
		res, err := trainAssignment(fam, src, e.Assign, WorkerConfig{LR: 0.05, Momentum: 0.9})
		if err != nil {
			t.Errorf("flaky train: %v", err)
			return
		}
		if err := c.send(&envelope{Kind: kindResult, Result: res}); err != nil {
			return
		}
	}
}

// TestServerSurvivesWorkerDeath runs three workers, kills one after two
// rounds, and verifies the server completes the full schedule with the
// remaining two.
func TestServerSurvivesWorkerDeath(t *testing.T) {
	fam := testFamily()
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	const rounds = 5
	part := data.PartitionIID(fam.DS, 3, rand.New(rand.NewSource(1)))
	for i := 0; i < 2; i++ {
		src := data.NewLoader(fam.DS, part[i], 4, rand.New(rand.NewSource(int64(i)+50)))
		go func(src core.Source) {
			_ = RunWorker(fam, src, WorkerConfig{Addr: addr, Name: "steady"})
		}(src)
	}
	flakySrc := data.NewLoader(fam.DS, part[2], 4, rand.New(rand.NewSource(60)))
	go deadAfterWorker(t, fam, addr, flakySrc, 2)

	res, err := Serve(fam, ServerConfig{
		Addr:         addr,
		Workers:      3,
		Rounds:       rounds,
		RoundTimeout: 10 * time.Second,
		Core: core.Config{
			Strategy:   core.StrategySynFL,
			Rounds:     rounds,
			LocalIters: 1,
			BatchSize:  4,
			EvalLimit:  40,
			Seed:       4,
		},
	})
	if err != nil {
		t.Fatalf("server did not survive a worker death: %v", err)
	}
	if res.Rounds != rounds {
		t.Errorf("completed %d rounds, want %d", res.Rounds, rounds)
	}
}
