package transport

import (
	"fmt"
	"math"
	"net"
	"time"

	"fedmp/internal/core"
	"fedmp/internal/nn"
)

// ServerConfig parameterises a parameter server.
type ServerConfig struct {
	// Addr is the listen address, e.g. ":7070" (":0" for an ephemeral
	// port in tests).
	Addr string
	// Workers is the number of workers to wait for before training.
	Workers int
	// Rounds is the number of global rounds to run.
	Rounds int
	// RoundTimeout bounds how long the server waits for one worker's
	// result each round; a worker exceeding it is dropped for the round.
	RoundTimeout time.Duration
	// Core carries the strategy and hyper-parameters; its Workers field is
	// overwritten by this config's.
	Core core.Config
	// Logf receives progress lines (nil silences logging).
	Logf func(format string, args ...any)
}

// Serve runs the parameter server end to end: it accepts the configured
// number of workers, runs the rounds and shuts the workers down, returning
// the evaluation trajectory. It reuses the simulation's strategies verbatim;
// only the time source differs (wall clock instead of the cluster model).
func Serve(fam core.Family, cfg ServerConfig) (*core.Result, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("transport: server needs at least one worker")
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("transport: server needs at least one round")
	}
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = 2 * time.Minute
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	coreCfg := cfg.Core
	coreCfg.Workers = cfg.Workers
	if coreCfg.Rounds == 0 {
		coreCfg.Rounds = cfg.Rounds
	}
	coreCfg, err := core.Normalize(coreCfg)
	if err != nil {
		return nil, err
	}
	strategy, err := core.NewStrategy(fam, &coreCfg)
	if err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	logf("parameter server listening on %s, waiting for %d workers", ln.Addr(), cfg.Workers)

	conns := make([]*conn, 0, cfg.Workers)
	defer func() {
		for _, c := range conns {
			_ = c.send(&envelope{Kind: kindShutdown, Shutdown: &shutdownMsg{Reason: "done"}})
			_ = c.close()
		}
	}()
	for len(conns) < cfg.Workers {
		raw, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		c := newConn(raw)
		e, err := c.recv(ioTimeout)
		if err != nil || e.Kind != kindHello {
			_ = c.close()
			logf("rejecting connection %v: bad hello", raw.RemoteAddr())
			continue
		}
		logf("worker %d joined: %s (%v)", len(conns), e.Hello.Name, raw.RemoteAddr())
		conns = append(conns, c)
	}

	global := fam.InitWeights(coreCfg.Seed)
	evalNet, err := fam.BuildNet(fam.FullDesc(), coreCfg.Seed)
	if err != nil {
		return nil, err
	}
	testB := fam.TestBatch(coreCfg.EvalLimit)

	res := &core.Result{
		Config:           coreCfg,
		TimeToTargetAcc:  math.Inf(1),
		TimeToTargetLoss: math.Inf(1),
	}
	start := time.Now()
	prevLoss := math.NaN()
	prevTimes := make([]float64, cfg.Workers)
	prevComm := make([]float64, cfg.Workers)
	var roundSum float64

	evaluate := func(round int) core.Point {
		nn.SetWeights(evalNet, global)
		loss, acc := core.EvalChunked(evalNet, testB, 64)
		p := core.Point{Round: round, Time: time.Since(start).Seconds(), Loss: loss, Acc: acc}
		res.Points = append(res.Points, p)
		return p
	}
	evaluate(0)

	alive := make([]bool, cfg.Workers)
	for i := range alive {
		alive[i] = true
	}
	liveWorkers := func() []int {
		var out []int
		for i, ok := range alive {
			if ok {
				out = append(out, i)
			}
		}
		return out
	}
	for round := 1; round <= coreCfg.Rounds; round++ {
		workerIDs := liveWorkers()
		if len(workerIDs) == 0 {
			return nil, fmt.Errorf("transport: every worker has disconnected")
		}
		mean := 0.0
		if round > 1 {
			mean = roundSum / float64(round-1)
		}
		info := &core.RoundInfo{
			Round:         round,
			Global:        global,
			PrevLoss:      prevLoss,
			PrevTimes:     append([]float64(nil), prevTimes...),
			PrevCommTimes: append([]float64(nil), prevComm...),
			MeanRoundTime: mean,
		}
		assignments, err := strategy.Assign(info, workerIDs)
		if err != nil {
			return nil, err
		}
		sentAt := make([]time.Time, len(assignments))
		var dropped []core.Assignment
		sent := make([]bool, len(assignments))
		for i, a := range assignments {
			msg := &assignMsg{
				Round:   round,
				Desc:    a.Desc,
				Weights: a.Weights,
				Iters:   a.Iters,
				ProxMu:  a.ProxMu,
				UploadK: a.UploadK,
				Ratio:   a.Ratio,
			}
			sentAt[i] = time.Now()
			if err := conns[a.Worker].send(&envelope{Kind: kindAssign, Assign: msg}); err != nil {
				logf("round %d: worker %d unreachable, removing (%v)", round, a.Worker, err)
				alive[a.Worker] = false
				dropped = append(dropped, a)
				continue
			}
			sent[i] = true
		}
		outs := make([]core.Output, 0, len(assignments))
		roundStart := time.Now()
		for i, a := range assignments {
			if !sent[i] {
				continue
			}
			e, err := conns[a.Worker].recv(cfg.RoundTimeout)
			if err != nil || e.Kind != kindResult || e.Result.Round != round {
				logf("round %d: dropping worker %d (%v)", round, a.Worker, err)
				alive[a.Worker] = false
				dropped = append(dropped, a)
				continue
			}
			total := time.Since(sentAt[i]).Seconds()
			comm := total - e.Result.CompSeconds
			if comm < 0 {
				comm = 0
			}
			o := core.Output{
				Assignment: a,
				NewWeights: e.Result.Weights,
				Update:     e.Result.Update,
				TrainLoss:  e.Result.TrainLoss,
				CompTime:   e.Result.CompSeconds,
				CommTime:   comm,
				Total:      total,
				DownBytes:  nn.WeightsBytes(a.Weights),
			}
			if o.NewWeights != nil {
				o.UpBytes = nn.WeightsBytes(o.NewWeights)
			}
			outs = append(outs, o)
			prevTimes[a.Worker] = total
			prevComm[a.Worker] = comm
		}
		if len(outs) == 0 {
			return nil, fmt.Errorf("transport: round %d lost every worker", round)
		}

		global, err = strategy.Aggregate(info, outs, dropped)
		if err != nil {
			return nil, err
		}
		roundTime := time.Since(roundStart).Seconds()
		roundSum += roundTime
		res.Rounds = round
		var losses float64
		for _, o := range outs {
			losses += o.TrainLoss
		}
		prevLoss = losses / float64(len(outs))

		if round%coreCfg.EvalEvery == 0 {
			p := evaluate(round)
			logf("round %d: loss %.4f acc %.3f (%d/%d workers, %.2fs)",
				round, p.Loss, p.Acc, len(outs), cfg.Workers, roundTime)
		}
	}
	if len(res.Points) > 0 {
		last := res.Points[len(res.Points)-1]
		res.FinalAcc, res.FinalLoss = last.Acc, last.Loss
	}
	res.Time = time.Since(start).Seconds()
	return res, nil
}
