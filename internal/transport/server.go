package transport

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"fedmp/internal/core"
	"fedmp/internal/nn"
	"fedmp/internal/tensor"
	"fedmp/internal/transport/checkpoint"
	"fedmp/internal/transport/codec"
)

// ServerConfig parameterises a parameter server.
type ServerConfig struct {
	// Addr is the listen address, e.g. ":7070" (":0" for an ephemeral
	// port in tests).
	Addr string
	// Workers is the number of workers to wait for before training.
	Workers int
	// Rounds is the number of global rounds to run.
	Rounds int
	// RoundTimeout bounds one round's collection phase; workers that have
	// not reported by then are marked suspect (skipped, not evicted) and
	// their assignments count as dropped.
	RoundTimeout time.Duration
	// Quorum is the number of results that completes a round early: once
	// this many workers have reported, the server waits at most
	// StragglerGrace longer for the rest before aggregating. Zero means
	// wait for every assigned worker (subject to RoundTimeout).
	Quorum int
	// StragglerGrace is how long the server keeps collecting after the
	// quorum is reached (default RoundTimeout/4).
	StragglerGrace time.Duration
	// HelloTimeout bounds how long an accepted connection may take to send
	// its hello before being rejected (default 10s); it keeps a silent
	// client from stalling startup.
	HelloTimeout time.Duration
	// AcceptTimeout bounds the initial wait for Workers workers to join
	// (default 2 minutes).
	AcceptTimeout time.Duration
	// CheckpointDir enables durability: the server checkpoints its full
	// state there (global model, round counter, bandit statistics, worker
	// identity table) and, when the directory already holds state from a
	// previous incarnation, resumes from the round after the last one it
	// closed instead of starting over. Empty disables checkpointing.
	CheckpointDir string
	// SnapshotEvery is the full-snapshot cadence in rounds (default 5).
	// Rounds in between are appended to a write-ahead log that a snapshot
	// resets; recovery replays the log on top of the latest snapshot.
	SnapshotEvery int
	// Abort, when non-nil, stops the server as a crash would when the
	// channel closes: every worker connection is severed without the
	// shutdown handshake and Serve returns ErrAborted. Used by recovery
	// tests and process supervisors; orderly completion ignores it.
	Abort <-chan struct{}
	// Core carries the strategy and hyper-parameters; its Workers field is
	// overwritten by this config's.
	Core core.Config
	// Logf receives progress lines (nil silences logging).
	Logf func(format string, args ...any)
}

// withDefaults validates the config and fills defaults.
func (cfg ServerConfig) withDefaults() (ServerConfig, error) {
	if cfg.Workers < 1 {
		return cfg, fmt.Errorf("transport: server needs at least one worker")
	}
	if cfg.Rounds < 1 {
		return cfg, fmt.Errorf("transport: server needs at least one round")
	}
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = 2 * time.Minute
	}
	if cfg.Quorum < 0 || cfg.Quorum > cfg.Workers {
		return cfg, fmt.Errorf("transport: quorum %d with %d workers", cfg.Quorum, cfg.Workers)
	}
	if cfg.Quorum == 0 {
		cfg.Quorum = cfg.Workers
	}
	if cfg.StragglerGrace == 0 {
		cfg.StragglerGrace = cfg.RoundTimeout / 4
	}
	if cfg.HelloTimeout == 0 {
		cfg.HelloTimeout = 10 * time.Second
	}
	if cfg.AcceptTimeout == 0 {
		cfg.AcceptTimeout = 2 * time.Minute
	}
	if cfg.SnapshotEvery < 0 {
		return cfg, fmt.Errorf("transport: snapshot cadence %d rounds", cfg.SnapshotEvery)
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 5
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg, nil
}

// Worker session states.
const (
	stateDown    = iota // no live connection
	stateActive         // connected and answering
	stateSuspect        // connected but missed a round; skipped until it answers
)

// event is what per-connection readers deliver to the round loop. A nil env
// signals a disconnect; bytes is the received frame's measured wire size.
type event struct {
	worker int
	env    *envelope
	bytes  int
}

// idleTimeout is the reader goroutines' per-receive deadline; it only needs
// to bound how long a dead-but-undetected connection can linger.
const idleTimeout = 24 * time.Hour

// registry owns the worker sessions: slot assignment by stable identity,
// per-slot connections with generation counters (a rejoin bumps the
// generation so the replaced reader's exit cannot tear down the new
// session), and the event stream the round loop consumes.
type registry struct {
	logf func(string, ...any)
	n    int

	mu    sync.Mutex
	slots map[string]int // stable identity -> slot
	names []string
	conns []*conn
	gens  []int
	state []int
	next  int // next unassigned slot

	events chan event
	joined chan struct{} // one token per successful (re)join

	// done is closed exactly once — by shutdown (orderly) or kill (abort) —
	// whichever runs first; the other becomes a no-op on the channel.
	done     chan struct{}
	doneOnce sync.Once
}

func newRegistry(n int, logf func(string, ...any)) *registry {
	return &registry{
		logf:   logf,
		n:      n,
		slots:  make(map[string]int),
		names:  make([]string, n),
		conns:  make([]*conn, n),
		gens:   make([]int, n),
		state:  make([]int, n),
		events: make(chan event, 8*n+16),
		joined: make(chan struct{}, 4*n+16),
		done:   make(chan struct{}),
	}
}

// admit places a hello'd connection into a slot: a known identity re-enters
// its old slot (rejoin), a new identity takes the next free slot, and a
// stranger arriving at a full server is turned away.
func (r *registry) admit(c *conn, hello *helloMsg) {
	select {
	case <-r.done:
		// Shutdown raced the accept loop: a connection hello'd after the
		// registry closed must not resurrect a slot. Tell the worker why
		// before closing — like the server-full rejection below — so the
		// hangup reads as a clean shutdown rather than a transport fault
		// that sends the worker back into its redial loop.
		sendShutdownLogged(c, "server shutting down", r.logf)
		closeLogged(c, r.logf, "late connection")
		return
	default:
	}
	r.mu.Lock()
	slot := -1
	if hello.ID != "" {
		if s, ok := r.slots[hello.ID]; ok {
			slot = s
		}
	}
	rejoin := slot >= 0
	if slot < 0 {
		if r.next >= r.n {
			r.mu.Unlock()
			sendShutdownLogged(c, "server full", r.logf)
			closeLogged(c, r.logf, "rejected connection")
			r.logf("rejecting %q: all %d slots taken", hello.Name, r.n)
			return
		}
		slot = r.next
		r.next++
		if hello.ID != "" {
			r.slots[hello.ID] = slot
		}
	}
	if old := r.conns[slot]; old != nil {
		closeLogged(old, r.logf, "replaced connection")
	}
	r.names[slot] = hello.Name
	r.conns[slot] = c
	r.gens[slot]++
	gen := r.gens[slot]
	r.state[slot] = stateActive
	r.mu.Unlock()

	if rejoin {
		r.logf("worker %d (%s) rejoined", slot, hello.Name)
	} else {
		r.logf("worker %d joined: %s", slot, hello.Name)
	}
	go r.read(slot, gen, c)
	select {
	case r.joined <- struct{}{}:
	default:
	}
}

// read pumps one connection's envelopes into the event stream until the
// connection dies or is replaced by a rejoin.
func (r *registry) read(slot, gen int, c *conn) {
	for {
		e, n, err := c.recv(idleTimeout)
		if err != nil {
			if r.drop(slot, gen) {
				r.push(event{worker: slot, env: nil})
			}
			return
		}
		r.push(event{worker: slot, env: e, bytes: n})
	}
}

// push delivers an event unless the server is shutting down.
func (r *registry) push(ev event) {
	select {
	case r.events <- ev:
	case <-r.done:
	}
}

// drop tears down a slot's session if the generation still matches (a rejoin
// bumps it first, making the old reader's teardown a no-op). Reports whether
// it acted.
func (r *registry) drop(slot, gen int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gens[slot] != gen || r.conns[slot] == nil {
		return false
	}
	closeLogged(r.conns[slot], r.logf, "dropped connection")
	r.conns[slot] = nil
	r.state[slot] = stateDown
	return true
}

// send transmits to a slot's current connection, returning the frame's
// measured wire size.
func (r *registry) send(slot int, e *envelope) (int, error) {
	r.mu.Lock()
	c := r.conns[slot]
	r.mu.Unlock()
	if c == nil {
		return 0, fmt.Errorf("transport: worker %d disconnected", slot)
	}
	return c.send(e)
}

// markSuspect demotes a connected worker that missed a round.
func (r *registry) markSuspect(slot int) {
	r.mu.Lock()
	if r.conns[slot] != nil {
		r.state[slot] = stateSuspect
	}
	r.mu.Unlock()
}

// restore promotes a suspect worker that answered back to active.
func (r *registry) restore(slot int) {
	r.mu.Lock()
	if r.conns[slot] != nil && r.state[slot] == stateSuspect {
		r.state[slot] = stateActive
		r.mu.Unlock()
		r.logf("worker %d answered again, restoring", slot)
		return
	}
	r.mu.Unlock()
}

// active lists slots that are connected and not suspect.
func (r *registry) active() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int
	for i := 0; i < r.n; i++ {
		if r.conns[i] != nil && r.state[i] == stateActive {
			out = append(out, i)
		}
	}
	return out
}

// suspects lists connected suspect slots.
func (r *registry) suspects() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int
	for i := 0; i < r.n; i++ {
		if r.conns[i] != nil && r.state[i] == stateSuspect {
			out = append(out, i)
		}
	}
	return out
}

// connected counts slots with a live connection.
func (r *registry) connected() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	cnt := 0
	for _, c := range r.conns {
		if c != nil {
			cnt++
		}
	}
	return cnt
}

// closeDone closes the done channel at most once, so the orderly shutdown
// path and the abort path can both run without racing a double close.
func (r *registry) closeDone() {
	r.doneOnce.Do(func() { close(r.done) })
}

// shutdown closes every live connection after sending a shutdown frame.
func (r *registry) shutdown(reason string) {
	r.closeDone()
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, c := range r.conns {
		if c == nil {
			continue
		}
		sendShutdownLogged(c, reason, r.logf)
		closeLogged(c, r.logf, "worker connection")
		r.conns[i] = nil
		r.state[i] = stateDown
	}
}

// pingSuspects sends a heartbeat to every connected suspect worker; a pong
// (or any other frame) restores it to the live set. Slot, generation and
// connection are captured under one mutex hold, and a failed send severs
// that exact captured connection: the blocked per-connection reader then
// unblocks with a recv error and runs the ordinary drop path immediately,
// instead of the dead suspect lingering until the idle timeout fires.
// Closing the captured pointer (rather than re-reading r.conns[slot]) keeps
// a concurrent rejoin's fresh connection safe — at worst the old, already
// replaced connection is closed twice.
func (r *registry) pingSuspects() {
	type target struct {
		slot, gen int
		c         *conn
	}
	var targets []target
	r.mu.Lock()
	for i := 0; i < r.n; i++ {
		if r.conns[i] != nil && r.state[i] == stateSuspect {
			targets = append(targets, target{i, r.gens[i], r.conns[i]})
		}
	}
	r.mu.Unlock()
	for _, t := range targets {
		if _, err := t.c.send(&envelope{Kind: kindPing}); err != nil {
			r.logf("heartbeat to worker %d (gen %d) failed, severing: %v", t.slot, t.gen, err)
			closeLogged(t.c, r.logf, "dead suspect connection")
		}
	}
}

// roundState tracks one round's in-flight collection.
type roundState struct {
	round     int
	pending   map[int]core.Assignment // worker -> assignment awaiting a result
	sentAt    map[int]time.Time
	sentBytes map[int]int64 // worker -> measured assignment frame size
	outs      []core.Output
	dropped   []core.Assignment
}

// server bundles the round loop's fixed parts.
type server struct {
	cfg      ServerConfig
	reg      *registry
	logf     func(string, ...any)
	quantize bool // ship assignments int8-quantized and ask for quantized results
}

// maxBarrenRounds bounds how many consecutive rounds may complete with zero
// results before the server gives up (every such round is retried, so this
// is a liveness backstop, not a scheduling parameter).
const maxBarrenRounds = 5

// Serve runs the parameter server end to end: it accepts the configured
// number of workers, runs the rounds and shuts the workers down, returning
// the evaluation trajectory. It reuses the simulation's strategies verbatim;
// only the time source differs (wall clock instead of the cluster model).
//
// The round engine is fault tolerant: sends and receives fan out per worker
// under a single round deadline, a round aggregates as soon as Quorum
// results are in (plus a straggler grace period), workers that miss a round
// are marked suspect and skipped — not evicted — and are restored as soon as
// they answer again (late result, heartbeat pong, or a fresh connection
// presenting the same stable worker identity).
func Serve(fam core.Family, cfg ServerConfig) (*core.Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	logf := cfg.Logf
	coreCfg := cfg.Core
	coreCfg.Workers = cfg.Workers
	if coreCfg.Rounds == 0 {
		coreCfg.Rounds = cfg.Rounds
	}
	coreCfg, err = core.Normalize(coreCfg)
	if err != nil {
		return nil, err
	}
	strategy, err := core.NewStrategy(fam, &coreCfg)
	if err != nil {
		return nil, err
	}

	global := fam.InitWeights(coreCfg.Seed)

	// Durability: open the checkpoint directory and recover any prior
	// incarnation's state before accepting workers, so a restarted server
	// resumes the schedule instead of starting over and rejoining workers
	// are preseeded back into their old slots from the first hello.
	var ckpt *checkpoint.Manager
	var resume *codec.Snapshot
	if cfg.CheckpointDir != "" {
		ckpt, err = checkpoint.Open(cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		defer func() {
			if cerr := ckpt.Close(); cerr != nil {
				logf("closing checkpoint state: %v", cerr)
			}
		}()
		snap, info, rerr := ckpt.Recover()
		if rerr != nil {
			return nil, fmt.Errorf("transport: recovering checkpoint: %w", rerr)
		}
		if info.TornTail {
			logf("checkpoint WAL had a torn tail (crash mid-append); truncated to the last closed round")
		}
		if info.UsedFallback {
			logf("current snapshot unreadable; recovered from the previous one")
		}
		if snap != nil {
			if err := checkResume(snap, cfg.Workers, coreCfg.Rounds, global); err != nil {
				return nil, err
			}
			if err := resumeBandits(snap, cfg.Workers, strategy); err != nil {
				return nil, err
			}
			resume = snap
			logf("recovered checkpoint: snapshot at round %d plus %d WAL rounds; resuming at round %d",
				info.SnapshotRound, info.WALRounds, snap.Round+1)
		}
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	logf("parameter server listening on %s, waiting for %d workers", ln.Addr(), cfg.Workers)

	reg := newRegistry(cfg.Workers, logf)
	if resume != nil {
		if err := reg.preseed(resume.Workers); err != nil {
			return nil, err
		}
	}
	defer reg.shutdown("done")
	go acceptLoop(ln, reg, cfg.HelloTimeout, logf)
	if cfg.Abort != nil {
		go func() {
			select {
			case <-cfg.Abort:
				logf("abort: severing worker connections and closing the listener")
				reg.kill()
				if cerr := ln.Close(); cerr != nil && !errors.Is(cerr, net.ErrClosed) {
					logf("closing listener on abort: %v", cerr)
				}
			case <-reg.done:
			}
		}()
	}

	// Startup: wait (boundedly) until every slot has joined once.
	acceptDeadline := time.NewTimer(cfg.AcceptTimeout)
	defer acceptDeadline.Stop()
	for reg.connected() < cfg.Workers {
		select {
		case <-reg.joined:
		case <-reg.done:
			return nil, ErrAborted
		case <-acceptDeadline.C:
			return nil, fmt.Errorf("transport: only %d of %d workers joined within %v",
				reg.connected(), cfg.Workers, cfg.AcceptTimeout)
		}
	}

	evalNet, err := fam.BuildNet(fam.FullDesc(), coreCfg.Seed)
	if err != nil {
		return nil, err
	}
	testB := fam.TestBatch(coreCfg.EvalLimit)

	res := &core.Result{
		Config:           coreCfg,
		TimeToTargetAcc:  math.Inf(1),
		TimeToTargetLoss: math.Inf(1),
	}
	start := time.Now()
	prevLoss := math.NaN()
	prevTimes := make([]float64, cfg.Workers)
	prevComm := make([]float64, cfg.Workers)
	lastRatio := make([]float64, cfg.Workers)
	var roundSum float64
	startRound := 1
	if resume != nil {
		global = resume.Global
		prevLoss = resume.PrevLoss
		roundSum = resume.RoundSum
		copy(prevTimes, resume.PrevTimes)
		copy(prevComm, resume.PrevComm)
		for _, w := range resume.Workers {
			lastRatio[w.Slot] = w.Ratio
		}
		startRound = resume.Round + 1
		res.Rounds = resume.Round
	}

	evaluate := func(round int) core.Point {
		nn.SetWeights(evalNet, global)
		loss, acc := core.EvalChunked(evalNet, testB, 64)
		p := core.Point{Round: round, Time: time.Since(start).Seconds(), Loss: loss, Acc: acc}
		res.Points = append(res.Points, p)
		return p
	}
	evaluate(startRound - 1)

	// snapshotState assembles the durable view of the server after a round:
	// the registry's identity table plus the model, the scheduler scalars
	// and the strategy's per-worker bandit state.
	snapshotState := func(round int) *codec.Snapshot {
		snap := &codec.Snapshot{
			Round:     round,
			Global:    global,
			PrevLoss:  prevLoss,
			RoundSum:  roundSum,
			PrevTimes: prevTimes,
			PrevComm:  prevComm,
			Workers:   reg.workerTable(),
		}
		bandits := exportBandits(strategy)
		for i := range snap.Workers {
			slot := snap.Workers[i].Slot
			snap.Workers[i].Ratio = lastRatio[slot]
			if slot < len(bandits) {
				snap.Workers[i].Bandit = bandits[slot]
			}
		}
		return snap
	}

	s := &server{cfg: cfg, reg: reg, logf: logf, quantize: coreCfg.QuantizeWire}
	barren := 0
	for round := startRound; round <= coreCfg.Rounds; round++ {
		select {
		case <-reg.done:
			return nil, ErrAborted
		default:
		}
		reg.pingSuspects()
		workerIDs, err := s.awaitLiveWorkers(round)
		if err != nil {
			return nil, err
		}
		mean := 0.0
		if round > 1 {
			mean = roundSum / float64(round-1)
		}
		info := &core.RoundInfo{
			Round:         round,
			Global:        global,
			PrevLoss:      prevLoss,
			PrevTimes:     append([]float64(nil), prevTimes...),
			PrevCommTimes: append([]float64(nil), prevComm...),
			MeanRoundTime: mean,
		}
		assignments, err := strategy.Assign(info, workerIDs)
		if err != nil {
			return nil, err
		}
		roundStart := time.Now()
		rs, err := s.runRound(round, assignments)
		if err != nil {
			return nil, err
		}
		if len(rs.outs) == 0 {
			barren++
			if barren >= maxBarrenRounds {
				return nil, fmt.Errorf("transport: %d consecutive rounds with no results", barren)
			}
			logf("round %d: no results; retrying with the restored worker set", round)
			round--
			continue
		}
		barren = 0

		for i := range rs.outs {
			o := &rs.outs[i]
			prevTimes[o.Worker] = o.Total
			prevComm[o.Worker] = o.CommTime
			lastRatio[o.Worker] = o.Ratio
		}
		global, err = strategy.Aggregate(info, rs.outs, rs.dropped)
		if err != nil {
			return nil, err
		}
		roundTime := time.Since(roundStart).Seconds()
		roundSum += roundTime
		res.Rounds = round
		var losses float64
		for _, o := range rs.outs {
			losses += o.TrainLoss
		}
		prevLoss = losses / float64(len(rs.outs))

		stat := core.RoundStat{
			Round:        round,
			Time:         roundTime,
			Participants: len(rs.outs),
			Dropped:      len(rs.dropped),
			Suspect:      len(reg.suspects()),
			Ratios:       make([]float64, cfg.Workers),
		}
		for _, o := range rs.outs {
			stat.CompTime += o.CompTime
			stat.CommTime += o.CommTime
			stat.DownBytes += o.DownBytes
			stat.UpBytes += o.UpBytes
			stat.Ratios[o.Worker] = o.Ratio
		}
		stat.CompTime /= float64(len(rs.outs))
		stat.CommTime /= float64(len(rs.outs))
		res.Stats = append(res.Stats, stat)

		if round%coreCfg.EvalEvery == 0 {
			p := evaluate(round)
			logf("round %d: loss %.4f acc %.3f (%d/%d workers, %d dropped, %.2fs)",
				round, p.Loss, p.Acc, len(rs.outs), cfg.Workers, len(rs.dropped), roundTime)
		}

		// The round is durable once its record is fsync'd: a full snapshot
		// every SnapshotEvery rounds (which resets the WAL), a WAL append in
		// between. A durability failure is fatal — continuing would silently
		// demote the recovery guarantee this server was configured for.
		if ckpt != nil {
			if round%cfg.SnapshotEvery == 0 {
				if err := ckpt.WriteSnapshot(snapshotState(round)); err != nil {
					return nil, fmt.Errorf("transport: checkpointing round %d: %w", round, err)
				}
			} else if err := ckpt.AppendRound(snapshotState(round)); err != nil {
				return nil, fmt.Errorf("transport: journaling round %d: %w", round, err)
			}
		}
	}
	if len(res.Points) > 0 {
		last := res.Points[len(res.Points)-1]
		res.FinalAcc, res.FinalLoss = last.Acc, last.Loss
	}
	res.Time = time.Since(start).Seconds()
	return res, nil
}

// acceptLoop admits connections for the server's whole lifetime so workers
// can rejoin mid-training; each hello is handled concurrently under its own
// deadline so a silent client cannot stall anyone else.
func acceptLoop(ln net.Listener, reg *registry, helloTimeout time.Duration, logf func(string, ...any)) {
	for {
		raw, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return // orderly: the listener closed on shutdown
			}
			logf("accept loop stopping: %v", err)
			return
		}
		go func(raw net.Conn) {
			c := newConn(raw)
			e, _, err := c.recv(helloTimeout)
			if err != nil || e.Kind != kindHello {
				closeLogged(c, logf, "silent connection")
				logf("rejecting connection %v: bad or missing hello", raw.RemoteAddr())
				return
			}
			reg.admit(c, e.Hello)
		}(raw)
	}
}

// awaitLiveWorkers returns the current active worker set, waiting up to the
// round timeout for a suspect to answer or a rejoin when the set is empty.
func (s *server) awaitLiveWorkers(round int) ([]int, error) {
	live := s.reg.active()
	if len(live) > 0 {
		return live, nil
	}
	s.logf("round %d: no live workers, waiting for a rejoin", round)
	deadline := time.NewTimer(s.cfg.RoundTimeout)
	defer deadline.Stop()
	for {
		select {
		case ev := <-s.reg.events:
			s.handleEvent(ev, nil)
		case <-s.reg.joined:
		case <-s.reg.done:
			return nil, ErrAborted
		case <-deadline.C:
			return nil, fmt.Errorf("transport: every worker has disconnected")
		}
		if live = s.reg.active(); len(live) > 0 {
			return live, nil
		}
	}
}

// runRound fans the assignments out to their workers and collects results
// until everyone answered, the quorum-plus-grace closes the round, or the
// round deadline expires. Workers that do not deliver are marked suspect and
// their assignments reported as dropped. An abort mid-collection surfaces as
// ErrAborted; the round's results are discarded (its WAL record was never
// written, so recovery replays the round).
func (s *server) runRound(round int, assignments []core.Assignment) (*roundState, error) {
	rs := &roundState{
		round:     round,
		pending:   make(map[int]core.Assignment, len(assignments)),
		sentAt:    make(map[int]time.Time, len(assignments)),
		sentBytes: make(map[int]int64, len(assignments)),
	}

	// Fan out sends; each is bounded by the connection write deadline.
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, a := range assignments {
		wg.Add(1)
		go func(a core.Assignment) {
			defer wg.Done()
			// With quantization on, the codec encodes each tensor int8
			// whenever that is cheaper; the worker then trains on the
			// dequantized reconstruction while this server keeps (and later
			// reconstructs against) the full-precision weights.
			msg := &assignMsg{
				Round:    round,
				Desc:     a.Desc,
				Weights:  a.Weights,
				Iters:    a.Iters,
				ProxMu:   a.ProxMu,
				UploadK:  a.UploadK,
				Ratio:    a.Ratio,
				Quantize: s.quantize,
			}
			sent := time.Now()
			n, err := s.reg.send(a.Worker, &envelope{Kind: kindAssign, Assign: msg, Quantize: s.quantize})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				s.logf("round %d: send to worker %d failed (%v)", round, a.Worker, err)
				rs.dropped = append(rs.dropped, a)
				s.reg.markSuspect(a.Worker)
				return
			}
			rs.pending[a.Worker] = a
			rs.sentAt[a.Worker] = sent
			rs.sentBytes[a.Worker] = int64(n)
		}(a)
	}
	wg.Wait()

	needed := s.cfg.Quorum
	if needed > len(rs.pending) {
		needed = len(rs.pending)
	}
	deadline := time.NewTimer(s.cfg.RoundTimeout)
	defer deadline.Stop()
	var grace *time.Timer
	var graceC <-chan time.Time
	defer func() {
		if grace != nil {
			grace.Stop()
		}
	}()
collect:
	for len(rs.pending) > 0 {
		if len(rs.outs) >= needed && graceC == nil {
			grace = time.NewTimer(s.cfg.StragglerGrace)
			graceC = grace.C
		}
		select {
		case ev := <-s.reg.events:
			s.handleEvent(ev, rs)
		case <-s.reg.done:
			return nil, ErrAborted
		case <-graceC:
			s.logf("round %d: quorum %d reached, grace expired with %d still in flight",
				round, needed, len(rs.pending))
			break collect
		case <-deadline.C:
			s.logf("round %d: deadline expired with %d still in flight", round, len(rs.pending))
			break collect
		}
	}
	// Whoever is still pending missed the round: suspect, not evicted.
	for w, a := range rs.pending {
		s.logf("round %d: worker %d missed the round, marking suspect", round, w)
		s.reg.markSuspect(w)
		rs.dropped = append(rs.dropped, a)
	}
	return rs, nil
}

// handleEvent folds one session event into the round state. rs may be nil
// (between rounds); results for other rounds are drained and discarded, and
// any frame from a suspect worker restores it.
func (s *server) handleEvent(ev event, rs *roundState) {
	if ev.env == nil {
		// Disconnect: a pending assignment on that session is lost.
		s.logf("worker %d disconnected", ev.worker)
		if rs != nil {
			if a, ok := rs.pending[ev.worker]; ok {
				delete(rs.pending, ev.worker)
				delete(rs.sentAt, ev.worker)
				delete(rs.sentBytes, ev.worker)
				rs.dropped = append(rs.dropped, a)
			}
		}
		return
	}
	switch ev.env.Kind {
	case kindResult:
		r := ev.env.Result
		if rs == nil || r.Round != rs.round {
			s.logf("discarding stale result from worker %d (round %d)", ev.worker, r.Round)
			s.reg.restore(ev.worker)
			return
		}
		a, ok := rs.pending[ev.worker]
		if !ok {
			s.logf("discarding duplicate result from worker %d", ev.worker)
			return
		}
		total := time.Since(rs.sentAt[ev.worker]).Seconds()
		comm := total - r.CompSeconds
		if comm < 0 {
			comm = 0
		}
		// Traffic is charged from the measured frames: the assignment frame
		// this round-trip started with and the result frame that just
		// arrived — the same sizes codec.FrameBytes predicts, so the cluster
		// simulation's accounting and this runtime's agree byte for byte.
		o := core.Output{
			Assignment: a,
			Update:     r.Update,
			TrainLoss:  r.TrainLoss,
			CompTime:   r.CompSeconds,
			CommTime:   comm,
			Total:      total,
			DownBytes:  rs.sentBytes[ev.worker],
			UpBytes:    int64(ev.bytes),
		}
		if r.Delta != nil {
			// Dense mode ships only the trained-minus-assigned delta;
			// reconstruct the new weights against the assignment we sent.
			w, err := applyDelta(a.Weights, r.Delta)
			if err != nil {
				s.logf("round %d: malformed result from worker %d (%v), dropping it", rs.round, ev.worker, err)
				delete(rs.pending, ev.worker)
				delete(rs.sentAt, ev.worker)
				delete(rs.sentBytes, ev.worker)
				rs.dropped = append(rs.dropped, a)
				return
			}
			o.NewWeights = w
		}
		delete(rs.pending, ev.worker)
		delete(rs.sentAt, ev.worker)
		delete(rs.sentBytes, ev.worker)
		rs.outs = append(rs.outs, o)
	case kindPong:
		s.reg.restore(ev.worker)
	case kindHello:
		// A second hello on an established session is a protocol error;
		// ignore it rather than killing the worker.
		s.logf("ignoring redundant hello from worker %d", ev.worker)
	default:
		s.logf("ignoring unexpected frame kind %d from worker %d", ev.env.Kind, ev.worker)
	}
}

// applyDelta reconstructs a worker's trained weights from the assignment's
// weights plus the uploaded delta (the dense-mode upload never repeats what
// the server just sent). The base tensors are cloned, never mutated — they
// may alias strategy state. A result whose delta does not match the
// assignment's shapes is a protocol error reported to the caller, not a
// panic.
func applyDelta(base, delta []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(delta) != len(base) {
		return nil, fmt.Errorf("delta has %d tensors, assignment has %d", len(delta), len(base))
	}
	out := nn.CloneWeights(base)
	for i := range out {
		if len(delta[i].Data) != len(out[i].Data) {
			return nil, fmt.Errorf("delta tensor %d has %d elements, assignment has %d",
				i, len(delta[i].Data), len(out[i].Data))
		}
		dst, src := out[i].Data, delta[i].Data
		for j := range dst {
			dst[j] += src[j]
		}
	}
	return out, nil
}
