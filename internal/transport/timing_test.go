package transport

import (
	"errors"
	"net"
	"testing"

	"fedmp/internal/core"
	"fedmp/internal/simclock"
	"fedmp/internal/transport/codec"
)

// TestTrainAssignmentFixedClock pins the simclock seam in the worker path:
// with simclock.Fixed injected, the CompSeconds a worker reports is an exact
// constant — timing assertions without sleeping or reading the wall clock.
func TestTrainAssignmentFixedClock(t *testing.T) {
	fam := testFamily()
	srcs, err := fam.Sources(1, core.NonIID{}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	msg := &assignMsg{
		Round:   1,
		Desc:    fam.FullDesc(),
		Weights: fam.InitWeights(5),
		Iters:   2,
	}
	for _, tc := range []struct {
		name    string
		perCall float64
	}{
		{"charged", 2.5},
		{"free", 0},
	} {
		res, err := trainAssignment(fam, srcs[0], msg, WorkerConfig{
			LR:    0.05,
			Clock: simclock.Fixed{PerCall: tc.perCall},
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.CompSeconds != tc.perCall {
			t.Errorf("%s: CompSeconds = %v, want exactly %v", tc.name, res.CompSeconds, tc.perCall)
		}
		if res.Round != 1 || len(res.Delta) == 0 {
			t.Errorf("%s: malformed result: round %d, %d delta tensors", tc.name, res.Round, len(res.Delta))
		}
	}
}

// TestHeartbeatAndResultOverPipe drives a full worker session — heartbeat,
// assignment, result, shutdown — over an in-memory pipe with a fixed clock:
// no listener, no dial retries, no real time anywhere in the assertions.
func TestHeartbeatAndResultOverPipe(t *testing.T) {
	fam := testFamily()
	srcs, err := fam.Sources(1, core.NonIID{}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	serverRaw, workerRaw := net.Pipe()
	server, worker := newConn(serverRaw), newConn(workerRaw)
	defer server.close()

	cfg := WorkerConfig{LR: 0.05, Clock: simclock.Fixed{PerCall: 3.25}}
	done := make(chan error, 1)
	go func() {
		lastRound := 0
		done <- serveConn(worker, fam, srcs[0], cfg, &lastRound, newBackoff(0, 0, 1), func(string, ...any) {})
	}()

	// Heartbeat: ping must come back as pong.
	if _, err := server.send(&envelope{Kind: kindPing}); err != nil {
		t.Fatal(err)
	}
	e, _, err := server.recv(ioTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != kindPong {
		t.Fatalf("heartbeat answered with kind %d, want pong", e.Kind)
	}

	// One assignment round; the fixed clock makes the reported compute
	// time exact. The measured frame sizes must agree with the codec's
	// size model in both directions — that is the contract that lets the
	// simulation charge the traffic the runtime really generates.
	assignEnv := &envelope{Kind: kindAssign, Assign: &assignMsg{
		Round:   1,
		Desc:    fam.FullDesc(),
		Weights: fam.InitWeights(5),
		Iters:   1,
	}}
	wantDown, err := codec.FrameBytes(assignEnv)
	if err != nil {
		t.Fatal(err)
	}
	sentDown, err := server.send(assignEnv)
	if err != nil {
		t.Fatal(err)
	}
	if int64(sentDown) != wantDown {
		t.Errorf("assignment frame measured %d bytes, size model says %d", sentDown, wantDown)
	}
	e, upBytes, err := server.recv(ioTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != kindResult {
		t.Fatalf("assignment answered with kind %d, want result", e.Kind)
	}
	if e.Result.CompSeconds != 3.25 {
		t.Errorf("CompSeconds = %v, want exactly 3.25 from the fixed clock", e.Result.CompSeconds)
	}
	wantUp, err := codec.FrameBytes(&envelope{Kind: kindResult, Result: e.Result})
	if err != nil {
		t.Fatal(err)
	}
	if int64(upBytes) != wantUp {
		t.Errorf("result frame measured %d bytes, size model says %d", upBytes, wantUp)
	}

	if _, err := server.send(&envelope{Kind: kindShutdown, Shutdown: &shutdownMsg{Reason: "test over"}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, errShutdown) {
		t.Fatalf("serveConn returned %v, want errShutdown", err)
	}
}
