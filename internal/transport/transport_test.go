package transport

import (
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"fedmp/internal/core"
	"fedmp/internal/data"
	"fedmp/internal/tensor"
	"fedmp/internal/zoo"
)

// testFamily builds a small image family shared by server and workers.
func testFamily() *core.ImageFamily {
	spec := &zoo.Spec{
		Name: "wire-tiny", InC: 1, InH: 8, InW: 8, Classes: 4,
		Layers: []zoo.LayerSpec{
			{Kind: zoo.KindConv, Name: "conv1", Out: 4, K: 3, Stride: 1, Pad: 1},
			{Kind: zoo.KindReLU, Name: "relu1"},
			{Kind: zoo.KindMaxPool, Name: "pool1", Window: 2},
			{Kind: zoo.KindFlatten, Name: "flat"},
			{Kind: zoo.KindDense, Name: "fc1", Out: 16},
			{Kind: zoo.KindReLU, Name: "relu2"},
			{Kind: zoo.KindDense, Name: "out", Out: 4},
		},
	}
	ds := data.Generate("wire-tiny", data.Config{
		Classes: 4, C: 1, H: 8, W: 8,
		TrainSize: 240, TestSize: 80, Noise: 0.5, MaxShift: 0, Seed: 77,
	})
	return &core.ImageFamily{Spec: spec, DS: ds}
}

// launch starts a server on an ephemeral port and n worker goroutines; it
// returns the server result.
func launch(t *testing.T, strategy core.StrategyID, workers, rounds int) *core.Result {
	t.Helper()
	return launchQuantized(t, strategy, workers, rounds, false)
}

// launchQuantized is launch with the wire-quantization knob exposed.
func launchQuantized(t *testing.T, strategy core.StrategyID, workers, rounds int, quantize bool) *core.Result {
	t.Helper()
	fam := testFamily()

	// Reserve a port deterministically by listening on :0 first.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	srvCfg := ServerConfig{
		Addr:         addr,
		Workers:      workers,
		Rounds:       rounds,
		RoundTimeout: 30 * time.Second,
		Core: core.Config{
			Strategy:     strategy,
			Rounds:       rounds,
			LocalIters:   2,
			BatchSize:    4,
			EvalLimit:    80,
			Seed:         5,
			QuantizeWire: quantize,
		},
	}

	part := data.PartitionIID(fam.DS, workers, rand.New(rand.NewSource(9)))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		src := data.NewLoader(fam.DS, part[i], 4, rand.New(rand.NewSource(int64(i)+100)))
		go func(i int, src core.Source) {
			defer wg.Done()
			if err := RunWorker(fam, src, WorkerConfig{Addr: addr, Name: "w"}); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i, src)
	}
	res, err := Serve(fam, srvCfg)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	wg.Wait()
	return res
}

func TestDistributedSynFL(t *testing.T) {
	res := launch(t, core.StrategySynFL, 3, 4)
	if res.Rounds != 4 {
		t.Errorf("ran %d rounds, want 4", res.Rounds)
	}
	if len(res.Points) != 5 {
		t.Errorf("%d eval points, want 5", len(res.Points))
	}
	if res.FinalLoss >= res.Points[0].Loss {
		t.Errorf("loss did not improve over the wire: %v -> %v", res.Points[0].Loss, res.FinalLoss)
	}
}

func TestDistributedFedMP(t *testing.T) {
	res := launch(t, core.StrategyFedMP, 3, 4)
	if res.Rounds != 4 {
		t.Errorf("ran %d rounds, want 4", res.Rounds)
	}
	if res.FinalAcc <= 0 {
		t.Error("zero accuracy after distributed FedMP training")
	}
}

func TestDistributedFlexCom(t *testing.T) {
	res := launch(t, core.StrategyFlexCom, 2, 3)
	if res.Rounds != 3 {
		t.Errorf("ran %d rounds, want 3", res.Rounds)
	}
}

func TestServerConfigValidation(t *testing.T) {
	fam := testFamily()
	if _, err := Serve(fam, ServerConfig{Addr: "127.0.0.1:0", Workers: 0, Rounds: 1}); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := Serve(fam, ServerConfig{Addr: "127.0.0.1:0", Workers: 1, Rounds: 0}); err == nil {
		t.Error("zero rounds accepted")
	}
}

func TestWorkerDialFailure(t *testing.T) {
	fam := testFamily()
	src := data.NewLoader(fam.DS, []int{0, 1, 2, 3}, 2, rand.New(rand.NewSource(1)))
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(fam, src, WorkerConfig{Addr: "127.0.0.1:1", Name: "w", MaxDialAttempts: 4})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("worker connected to a closed port")
		}
	case <-time.After(10 * time.Second):
		t.Error("worker dial did not fail promptly")
	}
}

func TestBadHelloRejected(t *testing.T) {
	fam := testFamily()
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	resCh := make(chan *core.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := Serve(fam, ServerConfig{
			Addr: addr, Workers: 1, Rounds: 1,
			RoundTimeout: 20 * time.Second,
			Core:         core.Config{Strategy: core.StrategySynFL, Rounds: 1, LocalIters: 1, BatchSize: 2, EvalLimit: 40, Seed: 2},
		})
		resCh <- res
		errCh <- err
	}()

	// First connection sends garbage (wrong magic) and must be rejected.
	time.Sleep(200 * time.Millisecond)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("not a frame at all\n"))
	raw.Close()

	// A real worker then joins and training completes.
	src := data.NewLoader(fam.DS, []int{0, 1, 2, 3, 4, 5}, 2, rand.New(rand.NewSource(3)))
	go func() {
		_ = RunWorker(fam, src, WorkerConfig{Addr: addr, Name: "legit"})
	}()
	res := <-resCh
	if err := <-errCh; err != nil {
		t.Fatalf("server: %v", err)
	}
	if res.Rounds != 1 {
		t.Errorf("rounds = %d, want 1", res.Rounds)
	}
}

// TestSimWireBytesParity pins the acceptance contract of the size model:
// the simulated cluster runtime and the real TCP runtime must report the
// same per-round traffic for identical plans. Round 1 is fully determined
// by the config (same seed → same initial weights, same strategy state), so
// the measured assignment frames on the wire must sum to exactly what the
// simulation charges through codec.FrameBytes.
func TestSimWireBytesParity(t *testing.T) {
	fam := testFamily()
	coreCfg := core.Config{
		Strategy:   core.StrategySynFL,
		Workers:    3,
		Rounds:     1,
		LocalIters: 2,
		BatchSize:  4,
		EvalLimit:  80,
		Seed:       5,
	}
	simRes, err := core.Run(fam, coreCfg)
	if err != nil {
		t.Fatalf("simulation: %v", err)
	}
	wireRes := launch(t, core.StrategySynFL, 3, 1)
	if len(simRes.Stats) == 0 || len(wireRes.Stats) == 0 {
		t.Fatalf("missing round stats: sim %d, wire %d", len(simRes.Stats), len(wireRes.Stats))
	}
	simDown, wireDown := simRes.Stats[0].DownBytes, wireRes.Stats[0].DownBytes
	if simDown != wireDown {
		t.Errorf("round-1 downlink bytes: simulation %d, wire %d — runtimes disagree on the size model", simDown, wireDown)
	}
	if simDown <= 0 {
		t.Errorf("round-1 downlink bytes = %d, want positive", simDown)
	}
}

// TestSimWireBytesParityQuantized repeats the byte-parity pin with wire
// quantization on: both runtimes must charge identical round-1 downlink
// traffic (the simulation prices the quantize-enabled frame with FrameBytes,
// the server measures the frame it actually wrote), and that traffic must be
// well under the float32 runs' — the int8 slabs are the point.
func TestSimWireBytesParityQuantized(t *testing.T) {
	fam := testFamily()
	coreCfg := core.Config{
		Strategy:     core.StrategySynFL,
		Workers:      3,
		Rounds:       1,
		LocalIters:   2,
		BatchSize:    4,
		EvalLimit:    80,
		Seed:         5,
		QuantizeWire: true,
	}
	simRes, err := core.Run(fam, coreCfg)
	if err != nil {
		t.Fatalf("simulation: %v", err)
	}
	wireRes := launchQuantized(t, core.StrategySynFL, 3, 1, true)
	if len(simRes.Stats) == 0 || len(wireRes.Stats) == 0 {
		t.Fatalf("missing round stats: sim %d, wire %d", len(simRes.Stats), len(wireRes.Stats))
	}
	simDown, wireDown := simRes.Stats[0].DownBytes, wireRes.Stats[0].DownBytes
	if simDown != wireDown {
		t.Errorf("quantized round-1 downlink bytes: simulation %d, wire %d — runtimes disagree on the size model", simDown, wireDown)
	}

	plainCfg := coreCfg
	plainCfg.QuantizeWire = false
	plainRes, err := core.Run(fam, plainCfg)
	if err != nil {
		t.Fatalf("float32 simulation: %v", err)
	}
	plainDown := plainRes.Stats[0].DownBytes
	if simDown*10 > plainDown*4 {
		t.Errorf("quantized downlink %d bytes vs %d float32; want < 40%%", simDown, plainDown)
	}
}

// TestLoopbackSmoke is the CI smoke round: two workers, one round, over
// loopback TCP with the binary codec (make ci runs it under -race).
func TestLoopbackSmoke(t *testing.T) {
	res := launch(t, core.StrategyFedMP, 2, 1)
	if res.Rounds != 1 {
		t.Errorf("ran %d rounds, want 1", res.Rounds)
	}
	if len(res.Stats) != 1 || res.Stats[0].Participants != 2 {
		t.Errorf("round stats %+v, want one round with 2 participants", res.Stats)
	}
}

// TestApplyDelta pins the server-side dense reconstruction: base plus delta
// without mutating the base, and protocol errors instead of panics on
// mismatched payloads.
func TestApplyDelta(t *testing.T) {
	base := []*tensor.Tensor{tensor.FromSlice([]float32{1, 2, 3, 4}, 4)}
	delta := []*tensor.Tensor{tensor.FromSlice([]float32{0.5, 0, -1, 2}, 4)}
	got, err := applyDelta(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1.5, 2, 2, 6}
	for i, v := range want {
		if got[0].Data[i] != v {
			t.Errorf("reconstructed[%d] = %v, want %v", i, got[0].Data[i], v)
		}
	}
	if base[0].Data[0] != 1 {
		t.Error("applyDelta mutated the assignment weights")
	}
	if _, err := applyDelta(base, nil); err == nil {
		t.Error("tensor-count mismatch accepted")
	}
	if _, err := applyDelta(base, []*tensor.Tensor{tensor.New(3)}); err == nil {
		t.Error("element-count mismatch accepted")
	}
}
