// Package transport provides a real distributed runtime for the federated
// framework: a parameter server and workers exchanging gob-encoded messages
// over TCP. The paper deploys FedMP on a physical testbed (one workstation
// PS plus Jetson workers); this package is the equivalent network runtime —
// the same core strategies drive it, but completion times are measured on
// the wall clock instead of the cluster simulation.
package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"fedmp/internal/prune"
	"fedmp/internal/tensor"
	"fedmp/internal/zoo"
)

func init() {
	// Concrete types carried in `any`-typed fields.
	gob.Register(&zoo.Spec{})
	gob.Register(zoo.LMConfig{})
	gob.Register(&prune.Plan{})
	gob.Register(&prune.LMPlan{})
}

// msgKind discriminates wire messages.
type msgKind int

const (
	kindHello msgKind = iota + 1
	kindAssign
	kindResult
	kindShutdown
	kindPing
	kindPong
)

// envelope is the single wire frame; exactly one payload field matching
// Kind is set (Ping/Pong carry no payload).
type envelope struct {
	Kind     msgKind
	Hello    *helloMsg
	Assign   *assignMsg
	Result   *resultMsg
	Shutdown *shutdownMsg
}

// helloMsg introduces a worker to the server.
type helloMsg struct {
	// Name is a human-readable worker label.
	Name string
	// ID is a stable worker identity: a reconnecting worker presenting an
	// ID the server has seen before re-enters its old slot mid-training
	// instead of being treated as a stranger. Empty IDs never match.
	ID string
}

// assignMsg is a per-round work order. It deliberately omits the R2SP
// residual and pruning plan — those are server-side bookkeeping the worker
// never needs (and the residual is as large as the full model).
type assignMsg struct {
	Round   int
	Desc    any
	Weights []*tensor.Tensor
	Iters   int
	ProxMu  float32
	UploadK float64
	Ratio   float64
}

// resultMsg is a worker's round result.
type resultMsg struct {
	Round       int
	Weights     []*tensor.Tensor
	Update      []*tensor.Tensor
	TrainLoss   float64
	CompSeconds float64
}

// shutdownMsg ends a worker's session.
type shutdownMsg struct {
	Reason string
}

// conn wraps a TCP connection with gob codecs and deadlines.
type conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

func (c *conn) send(e *envelope) error {
	if err := c.raw.SetWriteDeadline(time.Now().Add(ioTimeout)); err != nil {
		return err
	}
	return c.enc.Encode(e)
}

func (c *conn) recv(timeout time.Duration) (*envelope, error) {
	if err := c.raw.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	var e envelope
	if err := c.dec.Decode(&e); err != nil {
		return nil, err
	}
	if e.Kind == 0 {
		return nil, fmt.Errorf("transport: malformed envelope")
	}
	return &e, nil
}

func (c *conn) close() error { return c.raw.Close() }

// closeLogged closes c on a best-effort teardown path: the session is over
// either way, but a failing close still earns a log line instead of being
// silently dropped.
func closeLogged(c *conn, logf func(string, ...any), who string) {
	if err := c.close(); err != nil {
		logf("closing %s: %v", who, err)
	}
}

// sendShutdownLogged sends a shutdown frame without propagating the error:
// the peer may already be gone, which is exactly why it is being shut down.
func sendShutdownLogged(c *conn, reason string, logf func(string, ...any)) {
	if err := c.send(&envelope{Kind: kindShutdown, Shutdown: &shutdownMsg{Reason: reason}}); err != nil {
		logf("shutdown frame (%s): %v", reason, err)
	}
}

// ioTimeout bounds individual sends; round-level receives use the server's
// configured round timeout.
const ioTimeout = 30 * time.Second
