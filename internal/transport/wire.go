// Package transport provides a real distributed runtime for the federated
// framework: a parameter server and workers exchanging length-prefixed
// binary frames (internal/transport/codec) over TCP. The paper deploys
// FedMP on a physical testbed (one workstation PS plus Jetson workers); this
// package is the equivalent network runtime — the same core strategies
// drive it, but completion times are measured on the wall clock instead of
// the cluster simulation, and traffic is accounted from the measured frame
// sizes rather than a parameter-count estimate.
package transport

import (
	"bufio"
	"net"
	"time"

	"fedmp/internal/transport/codec"
)

// The wire vocabulary is defined once in internal/transport/codec — the
// simulation engine prices its virtual communication with the same size
// model — and aliased here so the server and worker read naturally.
type (
	envelope    = codec.Envelope
	helloMsg    = codec.Hello
	assignMsg   = codec.Assign
	resultMsg   = codec.Result
	shutdownMsg = codec.Shutdown
)

// Message kinds.
const (
	kindHello    = codec.KindHello
	kindAssign   = codec.KindAssign
	kindResult   = codec.KindResult
	kindShutdown = codec.KindShutdown
	kindPing     = codec.KindPing
	kindPong     = codec.KindPong
)

// conn wraps a TCP connection with the frame codec and deadlines. The reads
// go through a bufio.Reader so the codec's fixed-size header reads do not
// each cost a syscall; writes are already one syscall per frame (the codec
// emits each frame with a single Write).
type conn struct {
	raw net.Conn
	br  *bufio.Reader
	dec *codec.Decoder // lazily built by recvReuse; nil until first use
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, br: bufio.NewReaderSize(raw, 64<<10)}
}

// send encodes and writes one frame, returning its exact wire size.
func (c *conn) send(e *envelope) (int, error) {
	if err := c.raw.SetWriteDeadline(time.Now().Add(ioTimeout)); err != nil {
		return 0, err
	}
	return codec.WriteFrame(c.raw, e)
}

// recv reads and decodes one frame, returning its exact wire size alongside
// the envelope. Each call allocates a fresh envelope, so the caller may
// retain it indefinitely — the server's per-connection readers hand
// envelopes to the round loop's goroutine and need exactly that.
func (c *conn) recv(timeout time.Duration) (*envelope, int, error) {
	if err := c.raw.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, 0, err
	}
	return codec.ReadFrame(c.br)
}

// recvReuse reads one frame through a per-connection recycling decoder: the
// returned envelope and everything reachable from it (tensors included) are
// overwritten by the next recvReuse call. The worker's serve loop qualifies
// — it finishes each assignment and sends its result before reading the next
// frame — and in steady state decodes a round's assignment without heap
// allocation.
func (c *conn) recvReuse(timeout time.Duration) (*envelope, int, error) {
	if err := c.raw.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, 0, err
	}
	if c.dec == nil {
		c.dec = codec.NewDecoder(c.br)
	}
	return c.dec.ReadFrame()
}

func (c *conn) close() error { return c.raw.Close() }

// closeLogged closes c on a best-effort teardown path: the session is over
// either way, but a failing close still earns a log line instead of being
// silently dropped.
func closeLogged(c *conn, logf func(string, ...any), who string) {
	if err := c.close(); err != nil {
		logf("closing %s: %v", who, err)
	}
}

// sendShutdownLogged sends a shutdown frame without propagating the error:
// the peer may already be gone, which is exactly why it is being shut down.
func sendShutdownLogged(c *conn, reason string, logf func(string, ...any)) {
	if _, err := c.send(&envelope{Kind: kindShutdown, Shutdown: &shutdownMsg{Reason: reason}}); err != nil {
		logf("shutdown frame (%s): %v", reason, err)
	}
}

// ioTimeout bounds individual sends; round-level receives use the server's
// configured round timeout.
const ioTimeout = 30 * time.Second
