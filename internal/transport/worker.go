package transport

import (
	"fmt"
	"net"
	"time"

	"fedmp/internal/core"
	"fedmp/internal/nn"
	"fedmp/internal/tensor"
)

// WorkerConfig parameterises one edge worker process.
type WorkerConfig struct {
	// Addr is the parameter server's address.
	Addr string
	// Name is a human-readable label sent at registration.
	Name string
	// LR and Momentum configure the local optimiser.
	LR, Momentum float32
	// Logf receives progress lines (nil silences logging).
	Logf func(format string, args ...any)
}

// RunWorker connects to the parameter server and serves training rounds
// until the server sends a shutdown (or the connection drops). fam builds
// networks for incoming model descriptions; src supplies this worker's
// local data.
func RunWorker(fam core.Family, src core.Source, cfg WorkerConfig) error {
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	if cfg.Momentum == 0 {
		cfg.Momentum = 0.9
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c, err := dial(cfg.Addr)
	if err != nil {
		return err
	}
	defer c.close()
	if err := c.send(&envelope{Kind: kindHello, Hello: &helloMsg{Name: cfg.Name}}); err != nil {
		return fmt.Errorf("transport: hello: %w", err)
	}
	logf("connected to %s", cfg.Addr)

	for {
		e, err := c.recv(24 * time.Hour)
		if err != nil {
			return fmt.Errorf("transport: receiving assignment: %w", err)
		}
		switch e.Kind {
		case kindShutdown:
			logf("shutdown: %s", e.Shutdown.Reason)
			return nil
		case kindAssign:
			res, err := trainAssignment(fam, src, e.Assign, cfg)
			if err != nil {
				return err
			}
			if err := c.send(&envelope{Kind: kindResult, Result: res}); err != nil {
				return fmt.Errorf("transport: sending result: %w", err)
			}
			logf("round %d done: loss %.4f (ratio %.2f, %d params)",
				e.Assign.Round, res.TrainLoss, e.Assign.Ratio, nn.WeightsSize(e.Assign.Weights))
		default:
			return fmt.Errorf("transport: unexpected message kind %d", e.Kind)
		}
	}
}

// trainAssignment performs the local-training phase for one assignment,
// mirroring the simulation engine's worker step with wall-clock timing.
func trainAssignment(fam core.Family, src core.Source, a *assignMsg, cfg WorkerConfig) (*resultMsg, error) {
	start := time.Now()
	net, err := fam.BuildNet(a.Desc, 1)
	if err != nil {
		return nil, fmt.Errorf("transport: building assigned model: %w", err)
	}
	nn.SetWeights(net, a.Weights)
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, 0)
	var lossSum float64
	iters := a.Iters
	if iters < 1 {
		iters = 1
	}
	for it := 0; it < iters; it++ {
		b := src.Next()
		loss, _ := net.TrainStep(b)
		if a.ProxMu > 0 {
			nn.AddProximal(net.Params(), a.Weights, a.ProxMu)
		}
		opt.Step(net.Params())
		lossSum += loss
	}
	res := &resultMsg{
		Round:       a.Round,
		TrainLoss:   lossSum / float64(iters),
		CompSeconds: time.Since(start).Seconds(),
	}
	newW := nn.GetWeights(net)
	if a.UploadK > 0 {
		res.Update = core.TopKUpdate(a.Weights, newW, a.UploadK)
	} else {
		res.Weights = newW
	}
	return res, nil
}

// dial connects to the server with a bounded number of retries so workers
// can start before the server finishes binding.
func dial(addr string) (*conn, error) {
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		raw, err := net.DialTimeout("tcp", addr, ioTimeout)
		if err == nil {
			return newConn(raw), nil
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	return nil, fmt.Errorf("transport: dialing %s: %w", addr, lastErr)
}

// sparseBytes is exported for tests: the wire size of a sparse update.
func sparseBytes(update []*tensor.Tensor) int64 {
	var nnz int64
	for _, u := range update {
		for _, v := range u.Data {
			if v != 0 {
				nnz++
			}
		}
	}
	return nnz * 8
}
