package transport

import (
	"errors"
	"fmt"
	"net"
	"time"

	"fedmp/internal/core"
	"fedmp/internal/nn"
	"fedmp/internal/simclock"
)

// WorkerConfig parameterises one edge worker process.
type WorkerConfig struct {
	// Addr is the parameter server's address.
	Addr string
	// Name is a human-readable label sent at registration.
	Name string
	// ID is the worker's stable identity. A worker that reconnects with
	// the same ID re-enters its old slot on the server mid-training.
	// Empty selects a random per-process identity (rejoin still works
	// across reconnects, just not across process restarts).
	ID string
	// LR and Momentum configure the local optimiser.
	LR, Momentum float32
	// MaxDialAttempts bounds the backoff-with-jitter retry loop each time
	// the worker (re)connects (default 12, spanning ~30s).
	MaxDialAttempts int
	// MaxReconnects bounds how many times a lost session is re-established
	// before giving up (default 5; negative disables reconnecting).
	MaxReconnects int
	// Logf receives progress lines (nil silences logging).
	Logf func(format string, args ...any)
	// Clock charges the CompSeconds a worker reports with each result.
	// nil means the wall clock (simclock.Wall); tests inject
	// simclock.Fixed for reproducible timing without real sleeps.
	Clock simclock.Clock
}

// errShutdown distinguishes an orderly server shutdown from a broken
// session inside the worker loop.
var errShutdown = errors.New("transport: server shutdown")

// RunWorker connects to the parameter server and serves training rounds
// until the server sends a shutdown. fam builds networks for incoming model
// descriptions; src supplies this worker's local data.
//
// The worker is fault tolerant: a dropped connection is re-established with
// exponential backoff and jitter (escalating across consecutive failures,
// reset to the base interval once a round completes), the hello carries a
// stable identity so the server restores the worker into its old slot, and
// assignments for rounds the worker already served (or missed while away)
// are discarded instead of trained. One exception: the first assignment of
// a fresh session may rewind the round counter — a server restarted from a
// checkpoint legitimately resumes one round behind where this worker last
// trained, and refusing the rewind would deadlock the recovery.
func RunWorker(fam core.Family, src core.Source, cfg WorkerConfig) error {
	if cfg.LR == 0 {
		cfg.LR = 0.05
	}
	if cfg.Momentum == 0 {
		cfg.Momentum = 0.9
	}
	if cfg.MaxDialAttempts == 0 {
		cfg.MaxDialAttempts = defaultDialAttempts
	}
	if cfg.MaxReconnects == 0 {
		cfg.MaxReconnects = 5
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	bo := newBackoff(0, 0, time.Now().UnixNano())
	if cfg.ID == "" {
		cfg.ID = fmt.Sprintf("%s-%d", cfg.Name, time.Now().UnixNano())
	}

	lastRound := 0
	for session := 0; ; session++ {
		c, err := dial(cfg.Addr, bo, cfg.MaxDialAttempts)
		if err != nil {
			return err
		}
		if _, err := c.send(&envelope{Kind: kindHello, Hello: &helloMsg{Name: cfg.Name, ID: cfg.ID}}); err != nil {
			closeLogged(c, logf, "connection")
			return fmt.Errorf("transport: hello: %w", err)
		}
		logf("connected to %s (session %d)", cfg.Addr, session)
		err = serveConn(c, fam, src, cfg, &lastRound, bo, logf)
		closeLogged(c, logf, "session connection")
		if errors.Is(err, errShutdown) {
			return nil
		}
		if session >= cfg.MaxReconnects || cfg.MaxReconnects < 0 {
			return fmt.Errorf("transport: session lost and reconnect budget exhausted: %w", err)
		}
		logf("session lost (%v), reconnecting", err)
	}
}

// serveConn runs one session: it answers heartbeats and trains assignments
// until the connection breaks or the server shuts the worker down.
// lastRound persists across sessions so stale assignments — work orders for
// rounds the worker already served before a reconnect — are discarded. The
// session's first assignment is exempt: a lower round number there means the
// server restarted from a checkpoint and rewound, and the worker follows it.
// Completing a round (result sent) resets the shared backoff schedule.
func serveConn(c *conn, fam core.Family, src core.Source, cfg WorkerConfig, lastRound *int, bo *backoff, logf func(string, ...any)) error {
	firstAssign := true
	for {
		// The recycling decoder is safe here because every arm below fully
		// consumes the envelope (result sent, log line printed) before the
		// loop reads the next frame.
		e, _, err := c.recvReuse(idleTimeout)
		if err != nil {
			return fmt.Errorf("transport: receiving assignment: %w", err)
		}
		switch e.Kind {
		case kindShutdown:
			logf("shutdown: %s", e.Shutdown.Reason)
			return errShutdown
		case kindPing:
			if _, err := c.send(&envelope{Kind: kindPong}); err != nil {
				return fmt.Errorf("transport: answering heartbeat: %w", err)
			}
		case kindAssign:
			if e.Assign.Round <= *lastRound {
				if !firstAssign {
					logf("discarding stale assignment for round %d (already at %d)", e.Assign.Round, *lastRound)
					continue
				}
				// First assignment of a fresh session: the server restarted
				// from a checkpoint and legitimately rewound the round
				// counter. Accept it — its weights carry the recovered
				// global state, so retraining is correct, not duplicate work.
				logf("accepting round rewind %d -> %d (server recovered from checkpoint)",
					*lastRound, e.Assign.Round)
			}
			firstAssign = false
			res, err := trainAssignment(fam, src, e.Assign, cfg)
			if err != nil {
				return err
			}
			*lastRound = e.Assign.Round
			// An assignment that arrived quantized asks for a quantized
			// result; the codec still keeps any tensor where int8 would not
			// be byte-cheaper at full precision.
			if _, err := c.send(&envelope{Kind: kindResult, Result: res, Quantize: e.Assign.Quantize}); err != nil {
				return fmt.Errorf("transport: sending result: %w", err)
			}
			bo.reset()
			logf("round %d done: loss %.4f (ratio %.2f, %d params)",
				e.Assign.Round, res.TrainLoss, e.Assign.Ratio, nn.WeightsSize(e.Assign.Weights))
		default:
			return fmt.Errorf("transport: unexpected message kind %d", e.Kind)
		}
	}
}

// trainAssignment performs the local-training phase for one assignment,
// mirroring the simulation engine's worker step with wall-clock timing.
func trainAssignment(fam core.Family, src core.Source, a *assignMsg, cfg WorkerConfig) (*resultMsg, error) {
	clock := cfg.Clock
	if clock == nil {
		clock = simclock.Wall{}
	}
	elapsed := clock.Stopwatch()
	net, err := fam.BuildNet(a.Desc, 1)
	if err != nil {
		return nil, fmt.Errorf("transport: building assigned model: %w", err)
	}
	nn.SetWeights(net, a.Weights)
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, 0)
	var lossSum float64
	iters := a.Iters
	if iters < 1 {
		iters = 1
	}
	for it := 0; it < iters; it++ {
		b := src.Next()
		loss, _ := net.TrainStep(b)
		if a.ProxMu > 0 {
			nn.AddProximal(net.Params(), a.Weights, a.ProxMu)
		}
		opt.Step(net.Params())
		lossSum += loss
	}
	res := &resultMsg{
		Round:       a.Round,
		TrainLoss:   lossSum / float64(iters),
		CompSeconds: elapsed(),
	}
	newW := nn.GetWeights(net)
	if a.UploadK > 0 {
		res.Update = core.TopKUpdate(a.Weights, newW, a.UploadK)
	} else {
		// Dense mode uploads the trained-minus-assigned delta: the server
		// still has the weights it sent, so repeating them buys nothing,
		// and a partially-trained delta's zero runs compress under the
		// codec's sparse mode. GetWeights deep-copies, so the subtraction
		// can safely run in place.
		for i, w := range newW {
			w.Sub(a.Weights[i])
		}
		res.Delta = newW
	}
	return res, nil
}

// dial connects to the server, retrying on the shared backoff-with-jitter
// schedule so workers can start before the server finishes binding (and can
// ride out brief server restarts when reconnecting). The schedule's attempt
// counter carries over between dial loops — a flapping server that accepts
// connections and dies keeps escalating the delay until a round completes.
func dial(addr string, bo *backoff, attempts int) (*conn, error) {
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		raw, err := net.DialTimeout("tcp", addr, ioTimeout)
		if err == nil {
			return newConn(raw), nil
		}
		lastErr = err
		time.Sleep(bo.next())
	}
	return nil, fmt.Errorf("transport: dialing %s: %w", addr, lastErr)
}
