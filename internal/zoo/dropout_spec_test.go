package zoo

import (
	"math/rand"
	"testing"

	"fedmp/internal/nn"
	"fedmp/internal/tensor"
)

// dropoutSpec is a small spec exercising the Dropout and AvgPool kinds.
func dropoutSpec() *Spec {
	return &Spec{
		Name: "dropout-net", InC: 1, InH: 8, InW: 8, Classes: 4,
		Layers: []LayerSpec{
			{Kind: KindConv, Name: "conv", Out: 4, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU, Name: "relu"},
			{Kind: KindAvgPool, Name: "avg", Window: 2},
			{Kind: KindFlatten, Name: "flat"},
			{Kind: KindDense, Name: "fc", Out: 16},
			{Kind: KindDropout, Name: "drop", Rate: 0.3},
			{Kind: KindDense, Name: "out", Out: 4},
		},
	}
}

func TestDropoutSpecBuildsAndTrains(t *testing.T) {
	spec := dropoutSpec()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	net, err := Build(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(rng, 4, 1, 8, 8)
	loss, _ := net.TrainStep(&nn.Batch{X: x, Labels: []int{0, 1, 2, 3}})
	if loss <= 0 {
		t.Errorf("train loss %v", loss)
	}
	// Eval mode must be deterministic (dropout disabled). Clone the first
	// result: layers reuse their output buffers, so the second forward
	// overwrites the tensor the first one returned.
	a := net.Forward(x, false).Clone()
	b := net.Forward(x, false)
	if !tensor.Equal(a, b) {
		t.Error("eval-mode forward with dropout is not deterministic")
	}
}

func TestDropoutSpecValidation(t *testing.T) {
	spec := dropoutSpec()
	spec.Layers[5].Rate = 1.0
	if err := spec.Validate(); err == nil {
		t.Error("dropout rate 1.0 accepted")
	}
}

func TestDropoutSpecFLOPsAndParams(t *testing.T) {
	spec := dropoutSpec()
	if _, err := spec.ForwardFLOPs(); err != nil {
		t.Fatal(err)
	}
	fromSpec, err := spec.ParamCount()
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(spec, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if got := nn.ParamCount(net); got != fromSpec {
		t.Errorf("param count %d vs spec %d", got, fromSpec)
	}
}
