package zoo

import (
	"fmt"
	"math/rand"

	"fedmp/internal/nn"
)

// ModelID names one of the experiment architectures.
type ModelID string

// The four image classifiers of the paper's evaluation (scaled; see package
// comment) plus the §VI LSTM language model.
const (
	ModelCNN     ModelID = "cnn"     // paper: CNN on MNIST
	ModelAlexNet ModelID = "alexnet" // paper: AlexNet on CIFAR-10
	ModelVGG     ModelID = "vgg"     // paper: VGG-19 on EMNIST
	ModelResNet  ModelID = "resnet"  // paper: ResNet-50 on Tiny-ImageNet
	ModelLSTM    ModelID = "lstm"    // paper: 2-layer LSTM on Penn TreeBank
)

// ImageModelIDs lists the four image classifiers in paper order.
var ImageModelIDs = []ModelID{ModelCNN, ModelAlexNet, ModelVGG, ModelResNet}

// CNNSpec is the scaled counterpart of the paper's MNIST CNN (two 5×5
// convolutions, one hidden dense layer, softmax), on 1×16×16 inputs.
func CNNSpec() *Spec {
	return &Spec{
		Name: string(ModelCNN), InC: 1, InH: 16, InW: 16, Classes: 10,
		Layers: []LayerSpec{
			{Kind: KindConv, Name: "conv1", Out: 8, K: 5, Stride: 1, Pad: 2},
			{Kind: KindReLU, Name: "relu1"},
			{Kind: KindMaxPool, Name: "pool1", Window: 2},
			{Kind: KindConv, Name: "conv2", Out: 16, K: 5, Stride: 1, Pad: 2},
			{Kind: KindReLU, Name: "relu2"},
			{Kind: KindMaxPool, Name: "pool2", Window: 2},
			{Kind: KindFlatten, Name: "flat"},
			{Kind: KindDense, Name: "fc1", Out: 64},
			{Kind: KindReLU, Name: "relu3"},
			{Kind: KindDense, Name: "out", Out: 10},
		},
	}
}

// AlexNetSpec is the scaled AlexNet analogue: a conv stack with pooling
// followed by a multi-layer dense head, on 3×16×16 inputs (CIFAR-10
// analogue).
func AlexNetSpec() *Spec {
	return &Spec{
		Name: string(ModelAlexNet), InC: 3, InH: 16, InW: 16, Classes: 10,
		Layers: []LayerSpec{
			{Kind: KindConv, Name: "conv1", Out: 16, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU, Name: "relu1"},
			{Kind: KindMaxPool, Name: "pool1", Window: 2},
			{Kind: KindConv, Name: "conv2", Out: 32, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU, Name: "relu2"},
			{Kind: KindMaxPool, Name: "pool2", Window: 2},
			{Kind: KindConv, Name: "conv3", Out: 32, K: 3, Stride: 1, Pad: 1},
			{Kind: KindReLU, Name: "relu3"},
			{Kind: KindFlatten, Name: "flat"},
			{Kind: KindDense, Name: "fc1", Out: 96},
			{Kind: KindReLU, Name: "relu4"},
			{Kind: KindDense, Name: "fc2", Out: 48},
			{Kind: KindReLU, Name: "relu5"},
			{Kind: KindDense, Name: "out", Out: 10},
		},
	}
}

// VGGSpec is the scaled VGG analogue: paired 3×3 convolutions with batch
// normalisation between pooling stages, on 1×16×16 inputs with 62 classes
// (EMNIST analogue).
func VGGSpec() *Spec {
	return &Spec{
		Name: string(ModelVGG), InC: 1, InH: 16, InW: 16, Classes: 62,
		Layers: []LayerSpec{
			{Kind: KindConv, Name: "conv1a", Out: 8, K: 3, Stride: 1, Pad: 1},
			{Kind: KindBatchNorm, Name: "bn1a"},
			{Kind: KindReLU, Name: "relu1a"},
			{Kind: KindConv, Name: "conv1b", Out: 8, K: 3, Stride: 1, Pad: 1},
			{Kind: KindBatchNorm, Name: "bn1b"},
			{Kind: KindReLU, Name: "relu1b"},
			{Kind: KindMaxPool, Name: "pool1", Window: 2},
			{Kind: KindConv, Name: "conv2a", Out: 16, K: 3, Stride: 1, Pad: 1},
			{Kind: KindBatchNorm, Name: "bn2a"},
			{Kind: KindReLU, Name: "relu2a"},
			{Kind: KindConv, Name: "conv2b", Out: 16, K: 3, Stride: 1, Pad: 1},
			{Kind: KindBatchNorm, Name: "bn2b"},
			{Kind: KindReLU, Name: "relu2b"},
			{Kind: KindMaxPool, Name: "pool2", Window: 2},
			{Kind: KindConv, Name: "conv3a", Out: 32, K: 3, Stride: 1, Pad: 1},
			{Kind: KindBatchNorm, Name: "bn3a"},
			{Kind: KindReLU, Name: "relu3a"},
			{Kind: KindConv, Name: "conv3b", Out: 32, K: 3, Stride: 1, Pad: 1},
			{Kind: KindBatchNorm, Name: "bn3b"},
			{Kind: KindReLU, Name: "relu3b"},
			{Kind: KindMaxPool, Name: "pool3", Window: 2},
			{Kind: KindFlatten, Name: "flat"},
			{Kind: KindDense, Name: "fc1", Out: 96},
			{Kind: KindReLU, Name: "relu4"},
			{Kind: KindDense, Name: "out", Out: 62},
		},
	}
}

// ResNetSpec is the scaled residual-network analogue: a convolutional stem,
// two residual stages with identity skips and a dense head, on 3×16×16
// inputs with 200 classes (Tiny-ImageNet analogue).
//
// The full-size ResNet-50 ends in a 2048-wide global average pool; at this
// scale a GAP head would be a ~48-feature bottleneck where pruning even a
// few channels destroys the 200-way classifier, a failure mode the
// full-width model does not have. The scaled analogue therefore flattens
// the final feature map instead, preserving the relative redundancy the
// pruning experiments rely on (see DESIGN.md §1).
func ResNetSpec() *Spec {
	return &Spec{
		Name: string(ModelResNet), InC: 3, InH: 16, InW: 16, Classes: 200,
		Layers: []LayerSpec{
			{Kind: KindConv, Name: "stem", Out: 16, K: 3, Stride: 1, Pad: 1},
			{Kind: KindBatchNorm, Name: "bn0"},
			{Kind: KindReLU, Name: "relu0"},
			{Kind: KindMaxPool, Name: "pool0", Window: 2},
			{Kind: KindResidual, Name: "block1", Body: []LayerSpec{
				{Kind: KindConv, Name: "block1/conv1", Out: 16, K: 3, Stride: 1, Pad: 1},
				{Kind: KindBatchNorm, Name: "block1/bn1"},
				{Kind: KindReLU, Name: "block1/relu"},
				{Kind: KindConv, Name: "block1/conv2", Out: 16, K: 3, Stride: 1, Pad: 1},
				{Kind: KindBatchNorm, Name: "block1/bn2"},
			}},
			{Kind: KindReLU, Name: "relu1"},
			{Kind: KindConv, Name: "stage2", Out: 48, K: 3, Stride: 1, Pad: 1},
			{Kind: KindBatchNorm, Name: "bn2"},
			{Kind: KindReLU, Name: "relu2"},
			{Kind: KindMaxPool, Name: "pool2", Window: 2},
			{Kind: KindResidual, Name: "block2", Body: []LayerSpec{
				{Kind: KindConv, Name: "block2/conv1", Out: 48, K: 3, Stride: 1, Pad: 1},
				{Kind: KindBatchNorm, Name: "block2/bn1"},
				{Kind: KindReLU, Name: "block2/relu"},
				{Kind: KindConv, Name: "block2/conv2", Out: 48, K: 3, Stride: 1, Pad: 1},
				{Kind: KindBatchNorm, Name: "block2/bn2"},
			}},
			{Kind: KindReLU, Name: "relu3"},
			{Kind: KindFlatten, Name: "flat"},
			{Kind: KindDense, Name: "out", Out: 200},
		},
	}
}

// SpecFor returns the spec for an image model id.
func SpecFor(id ModelID) (*Spec, error) {
	switch id {
	case ModelCNN:
		return CNNSpec(), nil
	case ModelAlexNet:
		return AlexNetSpec(), nil
	case ModelVGG:
		return VGGSpec(), nil
	case ModelResNet:
		return ResNetSpec(), nil
	default:
		return nil, fmt.Errorf("zoo: no image spec for model %q", id)
	}
}

// LMConfig describes the language model of §VI.
type LMConfig struct {
	Vocab, Embed, Hidden, SeqLen int
}

// DefaultLMConfig returns the scaled Penn-TreeBank-analogue configuration.
func DefaultLMConfig() LMConfig {
	return LMConfig{Vocab: 80, Embed: 16, Hidden: 32, SeqLen: 12}
}

// BuildLM constructs the two-layer LSTM language model.
func BuildLM(cfg LMConfig, rng *rand.Rand) *nn.LSTMLM {
	return nn.NewLSTMLM(cfg.Vocab, cfg.Embed, cfg.Hidden, cfg.SeqLen, rng)
}
