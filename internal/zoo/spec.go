// Package zoo defines the model architectures used in the experiments and a
// declarative Spec representation the pruning planner and the network
// transport both consume.
//
// The paper evaluates CNN/MNIST, AlexNet/CIFAR-10, VGG-19/EMNIST,
// ResNet-50/Tiny-ImageNet and a 2-layer LSTM/PTB. Those full-size models are
// far beyond a single CPU core, so the zoo provides *scaled* architectures
// with the same structural shape — the same layer families, prunable
// structures (convolution filters, fully connected neurons, residual-block
// inner channels, LSTM hidden units) and relative cost profile. DESIGN.md §1
// documents the substitution.
package zoo

import (
	"fmt"
	"math/rand"

	"fedmp/internal/nn"
	"fedmp/internal/tensor"
)

// Kind enumerates the layer families a Spec can contain.
type Kind int

// Layer kinds. Conv and Dense carry learnable parameters and are the
// prunable structures; BatchNorm channels follow their preceding Conv.
const (
	KindConv Kind = iota
	KindBatchNorm
	KindReLU
	KindMaxPool
	KindAvgPool
	KindGlobalAvgPool
	KindFlatten
	KindDense
	KindResidual
	KindDropout
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindConv:
		return "conv"
	case KindBatchNorm:
		return "batchnorm"
	case KindReLU:
		return "relu"
	case KindMaxPool:
		return "maxpool"
	case KindAvgPool:
		return "avgpool"
	case KindDropout:
		return "dropout"
	case KindGlobalAvgPool:
		return "gap"
	case KindFlatten:
		return "flatten"
	case KindDense:
		return "dense"
	case KindResidual:
		return "residual"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// LayerSpec describes one layer of an image classifier.
type LayerSpec struct {
	Kind Kind
	// Name is the unique layer name within the model.
	Name string
	// Out is the number of filters (Conv) or units (Dense).
	Out int
	// K, Stride and Pad give convolution geometry.
	K, Stride, Pad int
	// Window is the pooling window (MaxPool/AvgPool).
	Window int
	// Rate is the drop probability (Dropout).
	Rate float64
	// Body holds the inner layers of a Residual block.
	Body []LayerSpec
}

// Spec describes an image-classifier architecture: the input geometry, the
// number of classes and an ordered layer list. It is pure data — gob-encodable
// for the network transport and trivially rewritable by the pruning planner.
type Spec struct {
	// Name identifies the architecture (e.g. "cnn-mnist").
	Name string
	// InC, InH, InW give the per-sample input geometry.
	InC, InH, InW int
	// Classes is the softmax width. The final Dense layer must have
	// Out == Classes; it is never pruned.
	Classes int
	// Layers is the layer chain.
	Layers []LayerSpec
}

// shapeState tracks per-sample activation geometry during a spec walk.
type shapeState struct {
	c, h, w int
	flat    bool // true once a Flatten has collapsed to [N, D]
	d       int  // width when flat
}

// Walk visits every layer of the spec with resolved input geometry,
// invoking fn with the layer, the enclosing residual block (nil at top
// level) and the input shape. It validates geometry as it goes and returns
// the first error. Both the builder and the pruning planner are written on
// top of Walk so their shape inference can never diverge.
func (s *Spec) Walk(fn func(l *LayerSpec, parent *LayerSpec, inC, inH, inW, inFlat int) error) error {
	st := shapeState{c: s.InC, h: s.InH, w: s.InW}
	if err := walkLayers(s.Layers, nil, &st, fn); err != nil {
		return err
	}
	if !st.flat {
		return fmt.Errorf("zoo: spec %q does not end in a flat layer", s.Name)
	}
	if st.d != s.Classes {
		return fmt.Errorf("zoo: spec %q ends with width %d, want %d classes", s.Name, st.d, s.Classes)
	}
	return nil
}

func walkLayers(layers []LayerSpec, parent *LayerSpec, st *shapeState, fn func(l *LayerSpec, parent *LayerSpec, inC, inH, inW, inFlat int) error) error {
	for i := range layers {
		l := &layers[i]
		inFlat := 0
		if st.flat {
			inFlat = st.d
		}
		if err := fn(l, parent, st.c, st.h, st.w, inFlat); err != nil {
			return err
		}
		switch l.Kind {
		case KindConv:
			if st.flat {
				return fmt.Errorf("zoo: conv %q after flatten", l.Name)
			}
			g := tensor.ConvGeom{InC: st.c, InH: st.h, InW: st.w, OutC: l.Out,
				KH: l.K, KW: l.K, Stride: l.Stride, Pad: l.Pad}
			g.Validate()
			st.c, st.h, st.w = l.Out, g.OutH(), g.OutW()
		case KindBatchNorm, KindReLU:
			// shape preserved
		case KindDropout:
			if l.Rate < 0 || l.Rate >= 1 {
				return fmt.Errorf("zoo: dropout %q rate %v outside [0,1)", l.Name, l.Rate)
			}
		case KindMaxPool, KindAvgPool:
			if st.flat {
				return fmt.Errorf("zoo: pool %q after flatten", l.Name)
			}
			if l.Window <= 0 || st.h%l.Window != 0 || st.w%l.Window != 0 {
				return fmt.Errorf("zoo: pool %q window %d does not divide %dx%d", l.Name, l.Window, st.h, st.w)
			}
			st.h /= l.Window
			st.w /= l.Window
		case KindGlobalAvgPool:
			if st.flat {
				return fmt.Errorf("zoo: gap %q after flatten", l.Name)
			}
			st.flat, st.d = true, st.c
		case KindFlatten:
			if st.flat {
				return fmt.Errorf("zoo: flatten %q after flatten", l.Name)
			}
			st.flat, st.d = true, st.c*st.h*st.w
		case KindDense:
			if !st.flat {
				return fmt.Errorf("zoo: dense %q before flatten", l.Name)
			}
			if l.Out <= 0 {
				return fmt.Errorf("zoo: dense %q with non-positive width %d", l.Name, l.Out)
			}
			st.d = l.Out
		case KindResidual:
			if st.flat {
				return fmt.Errorf("zoo: residual %q after flatten", l.Name)
			}
			if parent != nil {
				return fmt.Errorf("zoo: nested residual %q", l.Name)
			}
			before := *st
			if err := walkLayers(l.Body, l, st, fn); err != nil {
				return err
			}
			if st.flat || st.c != before.c || st.h != before.h || st.w != before.w {
				return fmt.Errorf("zoo: residual %q body is not shape-preserving", l.Name)
			}
		default:
			return fmt.Errorf("zoo: unknown layer kind %v in %q", l.Kind, l.Name)
		}
	}
	return nil
}

// Validate checks the spec's internal consistency.
func (s *Spec) Validate() error {
	if s.InC <= 0 || s.InH <= 0 || s.InW <= 0 {
		return fmt.Errorf("zoo: spec %q has invalid input %dx%dx%d", s.Name, s.InC, s.InH, s.InW)
	}
	if s.Classes <= 1 {
		return fmt.Errorf("zoo: spec %q has %d classes", s.Name, s.Classes)
	}
	names := map[string]bool{}
	return s.Walk(func(l *LayerSpec, _ *LayerSpec, _, _, _, _ int) error {
		if l.Name == "" {
			return fmt.Errorf("zoo: unnamed %v layer in %q", l.Kind, s.Name)
		}
		if names[l.Name] {
			return fmt.Errorf("zoo: duplicate layer name %q in %q", l.Name, s.Name)
		}
		names[l.Name] = true
		return nil
	})
}

// Clone deep-copies the spec.
func (s *Spec) Clone() *Spec {
	c := *s
	c.Layers = cloneLayers(s.Layers)
	return &c
}

func cloneLayers(layers []LayerSpec) []LayerSpec {
	out := append([]LayerSpec(nil), layers...)
	for i := range out {
		if len(out[i].Body) > 0 {
			out[i].Body = cloneLayers(out[i].Body)
		}
	}
	return out
}

// Build constructs a trainable network from the spec with freshly
// initialised parameters drawn from rng.
func Build(s *Spec, rng *rand.Rand) (*nn.Sequential, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var top []nn.Layer
	var resStack []*nn.Residual // at most one deep; Walk forbids nesting
	var resBody []nn.Layer
	err := s.Walk(func(l *LayerSpec, parent *LayerSpec, inC, inH, inW, inFlat int) error {
		var built nn.Layer
		switch l.Kind {
		case KindConv:
			g := tensor.ConvGeom{InC: inC, InH: inH, InW: inW, OutC: l.Out,
				KH: l.K, KW: l.K, Stride: l.Stride, Pad: l.Pad}
			built = nn.NewConv2D(l.Name, g, rng)
		case KindBatchNorm:
			built = nn.NewBatchNorm2D(l.Name, inC)
		case KindReLU:
			built = nn.NewReLU(l.Name)
		case KindMaxPool:
			built = nn.NewMaxPool2D(l.Name, inC, inH, inW, l.Window)
		case KindAvgPool:
			built = nn.NewAvgPool2D(l.Name, inC, inH, inW, l.Window)
		case KindDropout:
			built = nn.NewDropout(l.Name, float32(l.Rate), rng)
		case KindGlobalAvgPool:
			built = nn.NewGlobalAvgPool(l.Name, inC, inH, inW)
		case KindFlatten:
			built = nn.NewFlatten(l.Name, inC*inH*inW)
		case KindDense:
			built = nn.NewDense(l.Name, inFlat, l.Out, rng)
		case KindResidual:
			// Children arrive in subsequent callbacks; collect them.
			resStack = append(resStack, nil) // placeholder marks open block
			resBody = nil
			return nil
		}
		if parent != nil {
			resBody = append(resBody, built)
			// Close the block once the body is complete.
			if &parent.Body[len(parent.Body)-1] == l {
				block := nn.NewResidual(parent.Name, resBody...)
				top = append(top, block)
				resStack = resStack[:len(resStack)-1]
			}
			return nil
		}
		top = append(top, built)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(resStack) != 0 {
		return nil, fmt.Errorf("zoo: spec %q has an empty residual block", s.Name)
	}
	return nn.NewSequential(top...), nil
}

// ForwardFLOPs returns the analytic per-sample forward FLOPs of the spec
// without building parameters. It mirrors the FLOPs the built layers would
// report, which the heterogeneity simulation charges for local training.
func (s *Spec) ForwardFLOPs() (float64, error) {
	var total float64
	err := s.Walk(func(l *LayerSpec, _ *LayerSpec, inC, inH, inW, inFlat int) error {
		switch l.Kind {
		case KindConv:
			g := tensor.ConvGeom{InC: inC, InH: inH, InW: inW, OutC: l.Out,
				KH: l.K, KW: l.K, Stride: l.Stride, Pad: l.Pad}
			total += 2 * float64(l.Out) * float64(g.OutH()) * float64(g.OutW()) *
				float64(inC) * float64(l.K) * float64(l.K)
		case KindBatchNorm:
			total += 4 * float64(inC*inH*inW)
		case KindReLU:
			if inFlat > 0 {
				total += float64(inFlat)
			} else {
				total += float64(inC * inH * inW)
			}
		case KindMaxPool, KindAvgPool, KindGlobalAvgPool:
			total += float64(inC * inH * inW)
		case KindDense:
			total += 2 * float64(inFlat) * float64(l.Out)
		}
		return nil
	})
	return total, err
}

// ParamCount returns the number of scalar parameters the spec implies,
// counting the frozen batch-norm running statistics (they are exchanged
// over the wire like any other parameter, so they count toward model size).
func (s *Spec) ParamCount() (int, error) {
	total := 0
	err := s.Walk(func(l *LayerSpec, _ *LayerSpec, inC, _, _, inFlat int) error {
		switch l.Kind {
		case KindConv:
			total += l.Out*inC*l.K*l.K + l.Out
		case KindBatchNorm:
			total += 4 * inC // gamma, beta, running mean, running variance
		case KindDense:
			total += l.Out*inFlat + l.Out
		}
		return nil
	})
	return total, err
}
