package zoo

import (
	"math"
	"math/rand"
	"testing"

	"fedmp/internal/nn"
	"fedmp/internal/tensor"
)

func buildAll(t *testing.T) map[ModelID]*nn.Sequential {
	t.Helper()
	out := map[ModelID]*nn.Sequential{}
	rng := rand.New(rand.NewSource(1))
	for _, id := range ImageModelIDs {
		spec, err := SpecFor(id)
		if err != nil {
			t.Fatalf("SpecFor(%s): %v", id, err)
		}
		net, err := Build(spec, rng)
		if err != nil {
			t.Fatalf("Build(%s): %v", id, err)
		}
		out[id] = net
	}
	return out
}

func TestAllSpecsValidateAndBuild(t *testing.T) {
	buildAll(t)
}

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, id := range ImageModelIDs {
		spec, _ := SpecFor(id)
		net, err := Build(spec, rng)
		if err != nil {
			t.Fatalf("Build(%s): %v", id, err)
		}
		x := tensor.RandN(rng, 2, spec.InC, spec.InH, spec.InW)
		logits := net.Forward(x, true)
		if len(logits.Shape) != 2 || logits.Shape[0] != 2 || logits.Shape[1] != spec.Classes {
			t.Errorf("%s: logits shape %v, want [2 %d]", id, logits.Shape, spec.Classes)
		}
		if !logits.IsFinite() {
			t.Errorf("%s: non-finite logits at init", id)
		}
	}
}

func TestTrainStepRunsOnAllModels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, id := range ImageModelIDs {
		spec, _ := SpecFor(id)
		net, _ := Build(spec, rng)
		x := tensor.RandN(rng, 4, spec.InC, spec.InH, spec.InW)
		labels := make([]int, 4)
		for i := range labels {
			labels[i] = rng.Intn(spec.Classes)
		}
		loss, _ := net.TrainStep(&nn.Batch{X: x, Labels: labels})
		if math.IsNaN(loss) || math.IsInf(loss, 0) {
			t.Errorf("%s: train loss = %v", id, loss)
		}
		// Initial loss should be near ln(classes) for random init.
		want := math.Log(float64(spec.Classes))
		if math.Abs(loss-want) > want {
			t.Errorf("%s: initial loss %v too far from ln(C)=%v", id, loss, want)
		}
	}
}

func TestSpecFLOPsMatchBuiltModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, id := range ImageModelIDs {
		spec, _ := SpecFor(id)
		net, _ := Build(spec, rng)
		// Layer FLOPs for ReLU/BN are recorded lazily on forward; run one.
		x := tensor.RandN(rng, 1, spec.InC, spec.InH, spec.InW)
		net.Forward(x, true)
		fromSpec, err := spec.ForwardFLOPs()
		if err != nil {
			t.Fatalf("%s: ForwardFLOPs: %v", id, err)
		}
		fromNet := net.ForwardFLOPs()
		if math.Abs(fromSpec-fromNet)/fromNet > 0.01 {
			t.Errorf("%s: spec FLOPs %v vs built %v", id, fromSpec, fromNet)
		}
	}
}

func TestSpecParamCountMatchesBuiltModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, id := range ImageModelIDs {
		spec, _ := SpecFor(id)
		net, _ := Build(spec, rng)
		fromSpec, err := spec.ParamCount()
		if err != nil {
			t.Fatalf("%s: ParamCount: %v", id, err)
		}
		if fromNet := nn.ParamCount(net); fromSpec != fromNet {
			t.Errorf("%s: spec params %d vs built %d", id, fromSpec, fromNet)
		}
	}
}

func TestSpecCloneIsDeep(t *testing.T) {
	spec := ResNetSpec()
	c := spec.Clone()
	c.Layers[0].Out = 999
	c.Layers[4].Body[0].Out = 999
	if spec.Layers[0].Out == 999 || spec.Layers[4].Body[0].Out == 999 {
		t.Error("Clone is shallow")
	}
}

func TestInvalidSpecsRejected(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
	}{
		{"no flatten", &Spec{Name: "x", InC: 1, InH: 4, InW: 4, Classes: 2,
			Layers: []LayerSpec{{Kind: KindConv, Name: "c", Out: 2, K: 3, Stride: 1, Pad: 1}}}},
		{"wrong classes", &Spec{Name: "x", InC: 1, InH: 4, InW: 4, Classes: 2,
			Layers: []LayerSpec{{Kind: KindFlatten, Name: "f"}, {Kind: KindDense, Name: "d", Out: 3}}}},
		{"dense before flatten", &Spec{Name: "x", InC: 1, InH: 4, InW: 4, Classes: 2,
			Layers: []LayerSpec{{Kind: KindDense, Name: "d", Out: 2}}}},
		{"pool does not divide", &Spec{Name: "x", InC: 1, InH: 5, InW: 5, Classes: 2,
			Layers: []LayerSpec{{Kind: KindMaxPool, Name: "p", Window: 2},
				{Kind: KindFlatten, Name: "f"}, {Kind: KindDense, Name: "d", Out: 2}}}},
		{"duplicate names", &Spec{Name: "x", InC: 1, InH: 4, InW: 4, Classes: 2,
			Layers: []LayerSpec{{Kind: KindFlatten, Name: "f"},
				{Kind: KindDense, Name: "d", Out: 4}, {Kind: KindDense, Name: "d", Out: 2}}}},
		{"non-preserving residual", &Spec{Name: "x", InC: 2, InH: 4, InW: 4, Classes: 2,
			Layers: []LayerSpec{
				{Kind: KindResidual, Name: "r", Body: []LayerSpec{
					{Kind: KindConv, Name: "r/c", Out: 3, K: 3, Stride: 1, Pad: 1}}},
				{Kind: KindFlatten, Name: "f"}, {Kind: KindDense, Name: "d", Out: 2}}}},
		{"bad input", &Spec{Name: "x", InC: 0, InH: 4, InW: 4, Classes: 2}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", c.name)
		}
	}
}

func TestBuildLM(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := DefaultLMConfig()
	m := BuildLM(cfg, rng)
	seq := make([]int, cfg.SeqLen+1)
	for i := range seq {
		seq[i] = i % cfg.Vocab
	}
	loss, _ := m.Eval(&nn.Batch{Seq: [][]int{seq}})
	want := math.Log(float64(cfg.Vocab))
	if math.Abs(loss-want) > want {
		t.Errorf("LM initial loss %v too far from ln(V)=%v", loss, want)
	}
}

func TestSpecForUnknown(t *testing.T) {
	if _, err := SpecFor("nope"); err == nil {
		t.Error("SpecFor accepted an unknown id")
	}
	if _, err := SpecFor(ModelLSTM); err == nil {
		t.Error("SpecFor should reject the LSTM id (it has no image spec)")
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindConv, KindBatchNorm, KindReLU, KindMaxPool,
		KindGlobalAvgPool, KindFlatten, KindDense, KindResidual, Kind(99)}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("Kind(%d).String() = %q (empty or duplicate)", int(k), s)
		}
		seen[s] = true
	}
}
